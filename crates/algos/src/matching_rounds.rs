//! Maximal matching as a genuine message-passing protocol on the round
//! engine — the handshake variant: undecided nodes propose to their
//! lowest-priority available neighbor; mutual or accepted proposals match.
//!
//! Protocol (Israeli–Itai role splitting; two rounds per phase):
//!
//! 1. **Propose**: every active node flips a coin. *Proposers* send a
//!    prioritized proposal on one random available port; *acceptors* stay
//!    silent. The role split removes the classic handshake race in which
//!    two neighbors simultaneously accept different partners.
//! 2. **Accept**: each acceptor that received proposals accepts exactly
//!    one (smallest priority) and retires matched; the proposer learns of
//!    the acceptance on its proposal port and retires too. Matched nodes
//!    announce `Retired`, peeling their other edges.
//!
//! A constant fraction of active edges resolves per phase in expectation,
//! giving `O(log n)` phases w.h.p. The per-node outputs are merged with
//! [`lcl_core::assemble`] and checked against the `MaximalMatching`
//! ne-LCL.
//!
//! The protocol honors the round engine's sparse-execution contract
//! (`lcl_local::RoundAlgorithm`): a node that retires announces `Retired`
//! exactly once (an acceptor couples it with the `Accept` that seals the
//! match) and then falls silent with a no-op `receive`; undecided nodes
//! keep themselves scheduled with an `Active` keep-alive on one port
//! whenever they have no real message to send. Activity therefore
//! collapses onto the undecided frontier — what the event-driven engine
//! exploits in late rounds.

use crate::error::AlgoError;
use lcl_core::problems::MatchingLabel;
use lcl_core::{assemble, Labeling, NodeLocalOutput};
use lcl_local::{
    run_rounds_sharded_with, run_rounds_with, Network, NodeCtx, NodeExecutor, RoundAlgorithm,
    RoundOutcome, Sequential,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Messages of the handshake protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Proposal with the sender's current priority.
    Propose(u64),
    /// The sender accepts the match over this edge.
    Accept,
    /// The sender retired (its edges are unavailable) — sent exactly once,
    /// the round after the sender's decision.
    Retired,
    /// Keep-alive from an undecided node with no real message: carries no
    /// information, but keeps the sender scheduled on the event-driven
    /// engine (a node that sends nothing and hears nothing is skipped).
    Active,
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Propose,
    Accept,
}

/// Per-node protocol state.
pub struct State {
    phase: Phase,
    matched_port: Option<usize>,
    done: bool,
    /// `Some(port)` while acting as a proposer this phase.
    proposal_port: Option<usize>,
    /// True while acting as an acceptor this phase.
    acceptor: bool,
    /// The port accepted this phase (acceptor side), to be announced.
    accepted_port: Option<usize>,
    /// True from the receive that set `done` until the following receive:
    /// the window in which the one-shot `Retired` announcement goes out.
    retire_pending: bool,
    available: Vec<bool>,
    priority: u64,
}

/// The distributed handshake-matching algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistributedMatching;

/// Draws the node's role for the next phase: proposer on a random
/// available port, or acceptor.
fn draw_role(state: &mut State, degree: usize, rng: &mut ChaCha8Rng) {
    state.proposal_port = None;
    state.acceptor = false;
    if state.done {
        return;
    }
    let open: Vec<usize> = (0..degree).filter(|&p| state.available[p]).collect();
    if !open.is_empty() && rng.gen_bool(0.5) {
        state.proposal_port = Some(open[rng.gen_range(0..open.len())]);
    } else {
        state.acceptor = true;
    }
}

/// The port an undecided node sends its keep-alive on: the lowest port
/// whose neighbor is still in the game, falling back to port 0 when every
/// neighbor retired (the keep-alive then only keeps *this* node scheduled
/// long enough for its all-gone self-retirement).
fn keepalive_port(state: &State) -> usize {
    state.available.iter().position(|&a| a).unwrap_or(0)
}

impl RoundAlgorithm for DistributedMatching {
    type State = State;
    type Msg = Msg;
    type Output = Option<usize>;

    fn init(&self, ctx: &NodeCtx, rng: &mut ChaCha8Rng) -> State {
        let mut st = State {
            phase: Phase::Propose,
            matched_port: None,
            done: ctx.degree == 0,
            proposal_port: None,
            acceptor: false,
            accepted_port: None,
            retire_pending: false,
            available: vec![true; ctx.degree],
            priority: rng.gen(),
        };
        draw_role(&mut st, ctx.degree, rng);
        st
    }

    fn send(&self, state: &State, ctx: &NodeCtx) -> Vec<(usize, Msg)> {
        if state.done {
            // One-shot retirement announcement, then permanent silence. An
            // acceptor that just sealed a match couples the `Accept` to its
            // partner with the `Retired` peeling its other edges.
            if !state.retire_pending {
                return Vec::new();
            }
            return (0..ctx.degree)
                .map(|p| {
                    if state.accepted_port == Some(p) {
                        (p, Msg::Accept)
                    } else {
                        (p, Msg::Retired)
                    }
                })
                .collect();
        }
        match state.phase {
            Phase::Propose => {
                if let Some(port) = state.proposal_port {
                    vec![(port, Msg::Propose(state.priority))]
                } else {
                    // Acceptors listen this round; the keep-alive keeps
                    // them on the frontier so their phase advances.
                    vec![(keepalive_port(state), Msg::Active)]
                }
            }
            // Accepting itself retires a node (handled above); every node
            // still undecided here just keeps itself scheduled.
            Phase::Accept => vec![(keepalive_port(state), Msg::Active)],
        }
    }

    fn receive(
        &self,
        state: &mut State,
        ctx: &NodeCtx,
        inbox: &[(usize, Msg)],
        rng: &mut ChaCha8Rng,
    ) {
        if state.done {
            // First call after the decision lands in the announcement
            // round and spends the flag; afterwards this is a no-op, as
            // the sparse-execution contract requires (state frozen, no
            // RNG draw), whatever stragglers still send here.
            state.retire_pending = false;
            return;
        }
        match state.phase {
            Phase::Propose => {
                // Acceptors pick the best incoming proposal; everyone
                // marks retired neighbors unavailable.
                let mut best: Option<(u64, usize)> = None;
                for (port, msg) in inbox {
                    match msg {
                        Msg::Retired => state.available[*port] = false,
                        Msg::Propose(pr)
                            if state.acceptor && best.is_none_or(|(b, _)| (*pr) < b) =>
                        {
                            best = Some((*pr, *port));
                        }
                        _ => {}
                    }
                }
                if let Some((_, port)) = best {
                    state.matched_port = Some(port);
                    state.accepted_port = Some(port);
                    state.done = true;
                    state.retire_pending = true;
                }
                state.phase = Phase::Accept;
            }
            Phase::Accept => {
                for (port, msg) in inbox {
                    match msg {
                        Msg::Accept
                            // Only my own proposal port can be accepted,
                            // and only one neighbor can hold it.
                            if state.proposal_port == Some(*port) && state.matched_port.is_none() => {
                                state.matched_port = Some(*port);
                                state.done = true;
                                state.retire_pending = true;
                            }
                        Msg::Retired => state.available[*port] = false,
                        _ => {}
                    }
                }
                // If every neighbor is gone, retire unmatched.
                if !state.done && state.available.iter().all(|&a| !a) {
                    state.done = true;
                    state.retire_pending = true;
                }
                if !state.done {
                    state.priority = rng.gen();
                    draw_role(state, ctx.degree, rng);
                }
                state.phase = Phase::Propose;
            }
        }
    }

    fn output(&self, state: &State, _ctx: &NodeCtx) -> Option<Option<usize>> {
        state.done.then_some(state.matched_port)
    }
}

/// Result of a distributed matching run.
#[derive(Clone, Debug)]
pub struct DistributedMatchingOutcome {
    /// The assembled matching labeling.
    pub labeling: Labeling<MatchingLabel>,
    /// Rounds executed (2 per phase).
    pub rounds: u32,
}

impl DistributedMatchingOutcome {
    /// Decodes the labeling into a plain certifiable
    /// [`lcl_certify::Solution`].
    ///
    /// # Errors
    ///
    /// [`lcl_certify::Violation::Decode`] if the labeling is malformed.
    pub fn solution(
        &self,
        g: &lcl_graph::Graph,
    ) -> Result<lcl_certify::Solution, lcl_certify::Violation> {
        lcl_certify::decode::matching(g, &self.labeling)
    }
}

/// Runs the handshake protocol and assembles the labeling.
///
/// # Panics
///
/// Panics on the [`try_run`] error cases.
#[must_use]
pub fn run(net: &Network, seed: u64) -> DistributedMatchingOutcome {
    run_with(net, seed, &Sequential)
}

/// [`run`] with a pluggable [`NodeExecutor`].
///
/// # Panics
///
/// As [`run`].
#[must_use]
pub fn run_with<X: NodeExecutor>(net: &Network, seed: u64, exec: &X) -> DistributedMatchingOutcome {
    try_run_with(net, seed, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run`]: a pathological instance fails this call instead of
/// panicking the process.
///
/// # Errors
///
/// [`AlgoError::Unsolvable`] on graphs with self-loops (the reason
/// mentions "loopless"), [`AlgoError::RoundCapExceeded`] if the protocol
/// exceeds its round cap (vanishing probability).
pub fn try_run(net: &Network, seed: u64) -> Result<DistributedMatchingOutcome, AlgoError> {
    try_run_with(net, seed, &Sequential)
}

/// [`try_run`] with a pluggable [`NodeExecutor`]: per-node protocol steps
/// fan out across the executor, with the outcome bit-identical to
/// [`try_run`] under **any** executor.
///
/// # Errors
///
/// As [`try_run`].
pub fn try_run_with<X: NodeExecutor>(
    net: &Network,
    seed: u64,
    exec: &X,
) -> Result<DistributedMatchingOutcome, AlgoError> {
    reject_self_loops(net)?;
    let cap = round_cap(net);
    assemble_outcome(net, run_rounds_with(net, &DistributedMatching, seed, cap, exec), cap)
}

/// [`try_run_with`] scheduled over **component shards**
/// ([`run_rounds_sharded_with`]): the executor's work units are whole
/// connected components, each simulated on shard-local scratch. The
/// outcome is bit-identical to [`try_run`] — handshakes never cross a
/// component boundary and node RNG streams key on preserved LOCAL ids.
///
/// # Errors
///
/// As [`try_run`].
pub fn try_run_sharded_with<X: NodeExecutor>(
    net: &Network,
    seed: u64,
    exec: &X,
) -> Result<DistributedMatchingOutcome, AlgoError> {
    reject_self_loops(net)?;
    let cap = round_cap(net);
    assemble_outcome(net, run_rounds_sharded_with(net, &DistributedMatching, seed, cap, exec), cap)
}

fn reject_self_loops(net: &Network) -> Result<(), AlgoError> {
    if net.graph().edges().any(|e| net.graph().is_self_loop(e)) {
        return Err(AlgoError::Unsolvable {
            algo: "matching-rounds",
            reason: "matching requires a loopless graph".into(),
        });
    }
    Ok(())
}

fn round_cap(net: &Network) -> u32 {
    40 * ((net.known_n().max(2) as f64).log2() as u32 + 4)
}

fn assemble_outcome(
    net: &Network,
    out: RoundOutcome<<DistributedMatching as RoundAlgorithm>::Output>,
    cap: u32,
) -> Result<DistributedMatchingOutcome, AlgoError> {
    if !out.trace.completed {
        return Err(AlgoError::RoundCapExceeded { algo: "matching-rounds", cap });
    }
    let rounds = out.trace.rounds;
    let decisions = out.into_outputs();
    // A node's matched_port must be symmetric; assemble enforces edge
    // agreement, so label edges from the port decisions.
    let locals: Vec<NodeLocalOutput<MatchingLabel>> = decisions
        .iter()
        .enumerate()
        .map(|(i, matched)| {
            let v = lcl_graph::NodeId(i as u32);
            let degree = net.graph().degree(v);
            NodeLocalOutput {
                node: if matched.is_some() { MatchingLabel::Matched } else { MatchingLabel::Free },
                halves: vec![MatchingLabel::Blank; degree],
                edges: (0..degree)
                    .map(|p| {
                        if *matched == Some(p) {
                            MatchingLabel::InMatching
                        } else {
                            MatchingLabel::NotInMatching
                        }
                    })
                    .collect(),
            }
        })
        .collect();
    let labeling = assemble(net.graph(), &locals)
        .expect("handshake matches are symmetric, so edge labels agree");
    let outcome = DistributedMatchingOutcome { labeling, rounds };
    if lcl_certify::enabled() {
        crate::error::self_certify_decoded(net.graph(), outcome.solution(net.graph()));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::check;
    use lcl_core::problems::MaximalMatching;
    use lcl_graph::gen;
    use lcl_local::IdAssignment;

    #[test]
    fn handshake_matching_verifies_on_assorted_graphs() {
        for (g, seed) in [
            (gen::cycle(21), 1u64),
            (gen::random_regular(60, 3, 2).unwrap(), 2),
            (gen::complete(6), 3),
            (gen::grid(6, 5), 4),
            (gen::path(17), 5),
            (gen::random_tree(40, 6), 6),
        ] {
            let net = Network::new(g, IdAssignment::Shuffled { seed });
            let out = run(&net, seed);
            let input = Labeling::uniform(net.graph(), ());
            check(&MaximalMatching, net.graph(), &input, &out.labeling).expect_ok();
        }
    }

    #[test]
    fn rounds_are_even_and_bounded() {
        let g = gen::random_regular(512, 3, 7).unwrap();
        let net = Network::new(g, IdAssignment::Shuffled { seed: 7 });
        let out = run(&net, 7);
        assert_eq!(out.rounds % 2, 0);
        assert!(out.rounds <= 120, "took {}", out.rounds);
    }

    #[test]
    fn reproducible() {
        let g = gen::random_regular(50, 3, 4).unwrap();
        let net = Network::new(g, IdAssignment::Shuffled { seed: 4 });
        assert_eq!(run(&net, 6).labeling, run(&net, 6).labeling);
    }

    #[test]
    fn isolated_nodes_stay_free() {
        let mut g = gen::path(2);
        g.add_node();
        let net = Network::new(g, IdAssignment::Sequential);
        let out = run(&net, 1);
        assert_eq!(*out.labeling.node(lcl_graph::NodeId(2)), MatchingLabel::Free);
        let input = Labeling::uniform(net.graph(), ());
        check(&MaximalMatching, net.graph(), &input, &out.labeling).expect_ok();
    }
}
