//! `(2Δ−1)`-edge-coloring in `O(log* n + Δ²)` rounds: Linial color
//! reduction on the line graph.
//!
//! Two edges conflict iff they share an endpoint, so edges form a graph of
//! maximum degree `2Δ − 2`; running the reduction of [`crate::linial`] on
//! it yields a proper `(2Δ−1)`-edge-coloring. Initial colors come from the
//! edges' endpoint-identifier pairs (unique per edge up to parallel
//! bundles, which are separated by a port index).

use crate::error::AlgoError;
use lcl_core::problems::EdgeColoringLabel;
use lcl_core::Labeling;
use lcl_local::Network;

/// Result of an edge-coloring run.
#[derive(Clone, Debug)]
pub struct EdgeColoringOutcome {
    /// A proper `(2Δ−1)`-edge-coloring labeling.
    pub labeling: Labeling<EdgeColoringLabel>,
    /// Measured rounds (reduction + class elimination).
    pub rounds: u32,
    /// Colors per edge.
    pub colors: Vec<u32>,
}

impl EdgeColoringOutcome {
    /// The outcome as a plain certifiable [`lcl_certify::Solution`]
    /// against the `(2Δ−1)`-palette the algorithm targets.
    #[must_use]
    pub fn solution(&self, g: &lcl_graph::Graph) -> lcl_certify::Solution {
        let palette = 2 * g.max_degree().max(1) as u32 - 1;
        lcl_certify::Solution::EdgeColoring { colors: self.colors.clone(), palette: Some(palette) }
    }
}

/// Runs `(2Δ−1)`-edge-coloring.
///
/// # Panics
///
/// Panics on the [`try_run`] error case.
#[must_use]
pub fn run(net: &Network) -> EdgeColoringOutcome {
    try_run(net).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run`]: a pathological instance fails this call instead of
/// panicking the process.
///
/// # Errors
///
/// [`AlgoError::Unsolvable`] if the graph contains a self-loop — a loop
/// conflicts with itself (the reason mentions "loopless").
pub fn try_run(net: &Network) -> Result<EdgeColoringOutcome, AlgoError> {
    let g = net.graph();
    if g.edges().any(|e| g.is_self_loop(e)) {
        return Err(AlgoError::Unsolvable {
            algo: "edge-coloring",
            reason: "edge coloring requires a loopless graph".into(),
        });
    }
    let delta = g.max_degree().max(1) as u64;
    let line_degree = 2 * (delta - 1);
    let target = 2 * delta - 1;

    // Initial unique colors per edge: id-pair plus the port at the smaller
    // endpoint (separates parallel edges). Unique ⇒ proper.
    let idw = net.known_n() as u64 + 1;
    let mut colors: Vec<u64> = g
        .edges()
        .map(|e| {
            let [a, b] = g.endpoints(e);
            let (ia, ib) = (net.id_of(a), net.id_of(b));
            let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
            let port = g.port_of(lcl_graph::HalfEdge::new(e, lcl_graph::Side::A)) as u64;
            (lo * idw + hi) * (delta + 1) + port.min(delta)
        })
        .collect();
    let mut k = colors.iter().copied().max().unwrap_or(0) + 1;
    let mut rounds = 0;

    // Neighbor edges of `e` in the line graph, straight off the CSR port
    // tables of its endpoints (no materialized adjacency copy). An edge
    // parallel to `e` shows up once per shared endpoint; both consumers
    // below are idempotent over duplicates, so no dedup pass is needed.
    let line_neighbors = |e: usize| {
        let [a, b] = g.endpoints(lcl_graph::EdgeId(e as u32));
        g.ports(a).iter().chain(g.ports(b)).map(|h| h.edge().index()).filter(move |&x| x != e)
    };

    // Linial reduction steps (same structure as node coloring).
    while let Some(q) = linial_prime(k, line_degree) {
        let d = digits(k, q);
        colors = (0..colors.len())
            .map(|i| {
                let pv = poly(colors[i], q, d);
                let x = (0..q)
                    .find(|&x| {
                        line_neighbors(i).all(|j| {
                            let pw = poly(colors[j], q, d);
                            pw == pv || eval(&pv, x, q) != eval(&pw, x, q)
                        })
                    })
                    .expect("q > Δ_L(d-1) guarantees a free point");
                x * q + eval(&pv, x, q)
            })
            .collect();
        k = q * q;
        rounds += 1;
    }

    // Color-class elimination down to 2Δ − 1.
    while k > target {
        let top = k - 1;
        colors = (0..colors.len())
            .map(|i| {
                if colors[i] != top {
                    return colors[i];
                }
                let used: Vec<u64> = line_neighbors(i).map(|j| colors[j]).collect();
                (0..target).find(|c| !used.contains(c)).expect("palette suffices")
            })
            .collect();
        k -= 1;
        rounds += 1;
    }

    let colors_u32: Vec<u32> = colors.iter().map(|&c| c as u32).collect();
    let labeling = Labeling::build(
        g,
        |_| EdgeColoringLabel::Blank,
        |e| EdgeColoringLabel::Color(colors_u32[e.index()]),
        |_| EdgeColoringLabel::Blank,
    );
    let outcome = EdgeColoringOutcome { labeling, rounds, colors: colors_u32 };
    if lcl_certify::enabled() {
        crate::error::self_certify(g, &outcome.solution(g));
    }
    Ok(outcome)
}

// Shared small-number helpers (duplicated from `linial` to keep the
// modules independent; both are tested).
fn digits(k: u64, q: u64) -> u32 {
    let mut d = 1;
    let mut cap = q;
    while cap < k {
        cap = cap.saturating_mul(q);
        d += 1;
    }
    d
}

fn linial_prime(k: u64, delta: u64) -> Option<u64> {
    let mut q = 2;
    loop {
        if u128::from(q) * u128::from(q) >= u128::from(k) {
            return None;
        }
        if is_prime(q) {
            let d = digits(k, q);
            if q > delta * u64::from(d - 1) {
                return Some(q);
            }
        }
        q += 1;
    }
}

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    let mut f = 2;
    while f * f <= x {
        if x.is_multiple_of(f) {
            return false;
        }
        f += 1;
    }
    true
}

fn poly(c: u64, q: u64, d: u32) -> Vec<u64> {
    let mut digits = Vec::with_capacity(d as usize);
    let mut rest = c;
    for _ in 0..d {
        digits.push(rest % q);
        rest /= q;
    }
    digits
}

fn eval(p: &[u64], x: u64, q: u64) -> u64 {
    let mut acc = 0u64;
    for &coef in p.iter().rev() {
        acc = (acc * x + coef) % q;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::problems::EdgeColoring;
    use lcl_core::{check, Labeling as L};
    use lcl_graph::gen;
    use lcl_local::IdAssignment;

    #[test]
    fn three_edge_colors_on_cycles() {
        for n in [5usize, 64, 513] {
            let net = Network::new(gen::cycle(n), IdAssignment::Shuffled { seed: n as u64 });
            let out = run(&net);
            let input = L::uniform(net.graph(), ());
            check(&EdgeColoring::new(3), net.graph(), &input, &out.labeling).expect_ok();
        }
    }

    #[test]
    fn two_delta_minus_one_on_regular_graphs() {
        for (d, seed) in [(3usize, 1u64), (4, 2), (5, 3)] {
            let g = gen::random_regular(60, d, seed).unwrap();
            let net = Network::new(g, IdAssignment::Shuffled { seed });
            let out = run(&net);
            let palette = 2 * d as u32 - 1;
            assert!(out.colors.iter().all(|&c| c < palette));
            let input = L::uniform(net.graph(), ());
            check(&EdgeColoring::new(palette), net.graph(), &input, &out.labeling).expect_ok();
        }
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let mut g = gen::cycle(4);
        g.add_edge(lcl_graph::NodeId(0), lcl_graph::NodeId(1));
        let net = Network::new(g, IdAssignment::Shuffled { seed: 4 });
        let out = run(&net);
        let input = L::uniform(net.graph(), ());
        check(&EdgeColoring::new(5), net.graph(), &input, &out.labeling).expect_ok();
    }

    #[test]
    fn rounds_stay_bounded_as_n_grows() {
        let small = run(&Network::new(gen::cycle(32), IdAssignment::Shuffled { seed: 1 }));
        let large = run(&Network::new(gen::cycle(4096), IdAssignment::Shuffled { seed: 1 }));
        assert!(large.rounds <= small.rounds + 26, "{} vs {}", large.rounds, small.rounds);
    }

    #[test]
    fn trees_work() {
        let net = Network::new(gen::complete_binary_tree(6), IdAssignment::Shuffled { seed: 6 });
        let out = run(&net);
        let input = L::uniform(net.graph(), ());
        check(&EdgeColoring::new(5), net.graph(), &input, &out.labeling).expect_ok();
    }
}
