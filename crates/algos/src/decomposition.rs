//! Randomized `(O(log n), O(log n))` network decomposition (Linial–Saks).
//!
//! The paper's discussion section ties its main open question — can any
//! LCL have `D(n)/R(n) ≫ log n`? — to the deterministic complexity of
//! network decomposition: via Ghaffari–Harris–Kuhn, any LCL with
//! `D(n)/R(n) = ω(log² n)` would imply a superlogarithmic lower bound for
//! `(log n, log n)`-decompositions. This module provides the classical
//! randomized construction as an executable companion to that discussion.
//!
//! **Algorithm** (Linial–Saks 1993, ball-growing form). In iteration
//! (color) `i`: every still-alive node `y` draws a radius
//! `r_y ~ min(Geometric(1/2), B)` with `B = ⌈log₂ n⌉ + 2`. Every alive
//! node `v` looks at the alive candidates `y` with `dist(v, y) ≤ r_y` and
//! elects the one with the largest identifier. If `dist(v, y*) < r_{y*}`
//! (strictly interior), `v` joins cluster `y*` with color `i` and retires;
//! border nodes stay for later iterations. Two same-color clusters are
//! never adjacent: if neighbors `v₁ ∈ C(y₁)`, `v₂ ∈ C(y₂)` were both
//! strictly interior, each leader would have been a candidate for the
//! other's node, forcing `id(y₁) = id(y₂)`.
//!
//! Each iteration retires a node with probability ≥ 1/2 (its elected
//! leader's radius exceeds the election threshold with the geometric's
//! memorylessness), so `O(log n)` colors suffice w.h.p.; cluster weak
//! diameter is ≤ `2B = O(log n)`; and one iteration costs `O(B)` rounds.

use lcl_local::Network;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// A network decomposition: a color and a cluster (leader id) per node.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Color class of each node (0-based).
    pub color: Vec<u32>,
    /// Cluster leader's LOCAL identifier, per node.
    pub cluster: Vec<u64>,
    /// Number of color classes used.
    pub colors_used: u32,
    /// Measured rounds: iterations × (radius bound + 1).
    pub rounds: u32,
    /// The radius bound `B` used.
    pub radius_bound: u32,
}

/// Runs the Linial–Saks decomposition.
///
/// # Panics
///
/// Panics if the construction fails to retire every node within `8·log₂ n
/// + 16` iterations (probability `n^{-Ω(1)}`; indicates a bug).
#[must_use]
pub fn linial_saks(net: &Network, seed: u64) -> Decomposition {
    let g = net.graph();
    let n = g.node_count();
    let b = (net.known_n().max(2) as f64).log2().ceil() as u32 + 2;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDEC0_0515);

    let mut color = vec![u32::MAX; n];
    let mut cluster = vec![0u64; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut iteration = 0;
    let cap = 8 * (n.max(2) as f64).log2() as u32 + 16;

    while alive.iter().any(|&a| a) {
        assert!(iteration < cap, "decomposition failed to converge");
        // Radii: capped geometric with success probability 1/2.
        let radii: Vec<u32> = (0..n)
            .map(|i| {
                if !alive[i] {
                    return 0;
                }
                let mut r = 0;
                while r < b && rng.gen_bool(0.5) {
                    r += 1;
                }
                r
            })
            .collect();

        // For each alive node, the best (max-id) alive candidate y with
        // dist(v, y) ≤ r_y, tracked with the achieved distance. One BFS
        // per alive node y, over the full graph (weak diameter semantics).
        let mut best: Vec<Option<(u64, u32)>> = vec![None; n]; // (id, dist)
        for y in g.nodes() {
            if !alive[y.index()] {
                continue;
            }
            let ry = radii[y.index()];
            let idy = net.id_of(y);
            // BFS to radius ry.
            let mut dist = vec![u32::MAX; n];
            let mut queue = VecDeque::new();
            dist[y.index()] = 0;
            queue.push_back(y);
            while let Some(x) = queue.pop_front() {
                let dx = dist[x.index()];
                if alive[x.index()] {
                    let entry = &mut best[x.index()];
                    if entry.is_none_or(|(bid, _)| idy > bid) {
                        *entry = Some((idy, dx));
                    }
                }
                if dx < ry {
                    for (w, _) in g.neighbors(x) {
                        if dist[w.index()] == u32::MAX {
                            dist[w.index()] = dx + 1;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }

        // Strictly interior nodes retire with this color.
        for v in g.nodes() {
            if !alive[v.index()] {
                continue;
            }
            if let Some((leader_id, d)) = best[v.index()] {
                // Find the leader's radius: leaders are identified by id;
                // strictness compares against r_{y*}.
                let leader = g.nodes().find(|&y| net.id_of(y) == leader_id).expect("leader exists");
                if d < radii[leader.index()] {
                    color[v.index()] = iteration;
                    cluster[v.index()] = leader_id;
                    alive[v.index()] = false;
                }
            } else if radii[v.index()] == 0 {
                // No candidate at all (not even itself): r_v = 0 and no
                // neighbor reached v. v forms a singleton next time it
                // draws r_v ≥ 1; nothing to do now.
            }
        }
        iteration += 1;
    }

    Decomposition {
        color,
        cluster,
        colors_used: iteration,
        rounds: iteration * (b + 1),
        radius_bound: b,
    }
}

/// Validates a decomposition: total, same-color clusters non-adjacent,
/// weak cluster diameter ≤ `2B`.
///
/// # Errors
///
/// Returns a diagnostic for the first violated property.
pub fn validate(net: &Network, d: &Decomposition) -> Result<(), String> {
    let g = net.graph();
    if d.color.contains(&u32::MAX) {
        return Err("some node is uncolored".into());
    }
    // Same-color adjacent nodes must share a cluster.
    for e in g.edges() {
        let [u, v] = g.endpoints(e);
        if u != v
            && d.color[u.index()] == d.color[v.index()]
            && d.cluster[u.index()] != d.cluster[v.index()]
        {
            return Err(format!("adjacent same-color nodes {u:?}, {v:?} in different clusters"));
        }
    }
    // Weak diameter: every node is within 2B of every clustermate (via
    // the leader in the full graph). Check distance to the leader ≤ B.
    for v in g.nodes() {
        let leader = g
            .nodes()
            .find(|&y| net.id_of(y) == d.cluster[v.index()])
            .ok_or_else(|| "cluster leader does not exist".to_string())?;
        let dist = lcl_graph::bfs_distances(g, v);
        match dist[leader.index()] {
            Some(x) if x <= d.radius_bound => {}
            other => {
                return Err(format!(
                    "node {v:?} at distance {other:?} from its leader (B = {})",
                    d.radius_bound
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::IdAssignment;

    #[test]
    fn decomposes_random_regular_graphs() {
        for seed in 0..3 {
            let g = gen::random_regular(128, 3, seed).unwrap();
            let net = Network::new(g, IdAssignment::Shuffled { seed });
            let d = linial_saks(&net, seed);
            validate(&net, &d).expect("valid decomposition");
            let log = (128f64).log2();
            assert!(f64::from(d.colors_used) <= 4.0 * log, "too many colors: {}", d.colors_used);
        }
    }

    #[test]
    fn decomposes_assorted_topologies() {
        for (g, seed) in [
            (gen::cycle(40), 1u64),
            (gen::grid(8, 8), 2),
            (gen::complete(10), 3),
            (gen::random_tree(60, 4), 4),
            (gen::disjoint_cycles(4, 7), 5),
        ] {
            let net = Network::new(g, IdAssignment::Shuffled { seed });
            let d = linial_saks(&net, seed);
            validate(&net, &d).expect("valid decomposition");
        }
    }

    #[test]
    fn colors_grow_slowly_with_n() {
        let mut prev = 0.0;
        for (n, seed) in [(64usize, 1u64), (512, 2), (2048, 3)] {
            let g = gen::random_regular(n, 3, seed).unwrap();
            let net = Network::new(g, IdAssignment::Shuffled { seed });
            let d = linial_saks(&net, seed);
            let per_log = f64::from(d.colors_used) / (n as f64).log2();
            assert!(per_log <= 2.0, "colors/log n = {per_log} at n = {n}");
            prev = per_log.max(prev);
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn rounds_are_colors_times_radius() {
        let g = gen::random_regular(64, 3, 7).unwrap();
        let net = Network::new(g, IdAssignment::Shuffled { seed: 7 });
        let d = linial_saks(&net, 7);
        assert_eq!(d.rounds, d.colors_used * (d.radius_bound + 1));
    }

    #[test]
    fn reproducible() {
        let g = gen::random_regular(64, 3, 8).unwrap();
        let net = Network::new(g, IdAssignment::Shuffled { seed: 8 });
        let a = linial_saks(&net, 5);
        let b = linial_saks(&net, 5);
        assert_eq!(a.color, b.color);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn validate_rejects_mixed_clusters() {
        let g = gen::path(3);
        let net = Network::new(g, IdAssignment::Sequential);
        let bad = Decomposition {
            color: vec![0, 0, 0],
            cluster: vec![1, 2, 2],
            colors_used: 1,
            rounds: 1,
            radius_bound: 4,
        };
        assert!(validate(&net, &bad).is_err());
    }
}
