//! Distributed LOCAL-model algorithms.
//!
//! This crate implements the algorithms whose complexities the paper quotes:
//!
//! * [`sinkless_det`]: deterministic sinkless orientation in `Θ(log n)`
//!   rounds — the folklore "orient toward the nearest short cycle"
//!   algorithm, with a canonical-cycle rule making the per-edge decisions
//!   endpoint-consistent;
//! * [`sinkless_rand`]: randomized sinkless orientation with the
//!   shattering structure underlying the `Θ(log log n)` bound of
//!   Ghaffari–Su: `O(log log n)` propose/retry rounds, then exact solving of
//!   the (w.h.p. polylog-size) residual components;
//! * [`linial`]: Linial color reduction to `Δ + 1` colors in
//!   `O(log* n + Δ²)` rounds — on cycles this is the classical 3-coloring
//!   reference point of the paper's Figure 1;
//! * [`luby`]: Luby-style maximal independent set, `O(log n)` rounds w.h.p.
//!   (plus [`luby_rounds`], the same algorithm as genuine message passing
//!   on the round engine);
//! * [`matching`]: randomized greedy maximal matching, `O(log n)` rounds
//!   w.h.p.;
//! * [`decomposition`]: randomized `(O(log n), O(log n))` network
//!   decomposition (Linial–Saks) — the companion to the paper's discussion
//!   of the `D(n)/R(n) ≫ log n` open question.
//!
//! # Simulation style and honesty
//!
//! Each algorithm is *specified* as a LOCAL algorithm (a function of
//! per-node views / synchronous rounds) and *executed* as an efficient
//! centralized simulation that computes exactly what the distributed nodes
//! would compute, together with an honest account of the locality
//! (view radius or round count) every node would have needed. Tests validate
//! honesty two ways: outputs always pass the `lcl-core` checker, and
//! locality audits confirm a node's output is unchanged under arbitrary
//! modifications outside its reported radius (see
//! `tests/locality_audit.rs` at the workspace root).
//!
//! # Self-certification and typed failures
//!
//! Every runner additionally lowers its finished output into a plain
//! [`lcl_certify::Solution`] and replays it through the independent
//! `lcl-certify` checkers whenever [`lcl_certify::enabled`] says so
//! (debug builds, or `LCL_CERTIFY=1`): the algorithms do not grade their
//! own homework. Pathological instances surface as typed
//! [`error::AlgoError`]s through the `try_run` variants instead of
//! panicking the shared worker pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposition;
pub mod edge_coloring;
pub mod error;
pub mod linial;
pub mod luby;
pub mod luby_rounds;
pub mod matching;
pub mod matching_rounds;
pub mod rules;
pub mod sinkless_det;
pub mod sinkless_rand;
