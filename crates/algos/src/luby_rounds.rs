//! Luby's MIS as a **genuine message-passing algorithm** on the round
//! engine (`lcl_local::run_rounds`), in contrast to the centralized
//! simulation of [`crate::luby`].
//!
//! Protocol (two rounds per Luby phase):
//!
//! 1. **Exchange**: every undecided node draws a fresh priority and sends
//!    `(priority, id)` on all ports;
//! 2. **Resolve**: strict local minima announce `Joined`; their neighbors
//!    leave the competition, recording the announcing port as their
//!    dominator pointer.
//!
//! The protocol honors the round engine's sparse-execution contract
//! (`lcl_local::RoundAlgorithm`): decided nodes fall silent and their
//! `receive` is a no-op, undecided non-joiners keep themselves scheduled
//! through a `Resolve`-round keep-alive on port 0, and isolated nodes
//! (degree 0, hearing nothing ever) join at `init`. Activity therefore
//! collapses onto the undecided frontier — exactly what the event-driven
//! engine exploits in late rounds.
//!
//! The per-node outputs are merged into a global labeling with
//! [`lcl_core::assemble`] — the same edge-agreement rule the paper imposes
//! on ne-LCL outputs — and checked against `MaximalIndependentSet`.

use crate::error::AlgoError;
use lcl_core::problems::MisLabel;
use lcl_core::{assemble, Labeling, NodeLocalOutput};
use lcl_local::{
    run_rounds_sharded_with, run_rounds_with, Network, NodeCtx, NodeExecutor, RoundAlgorithm,
    RoundOutcome, Sequential,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Messages of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// An undecided node's current priority draw (with its id as a
    /// symmetric tiebreaker).
    Priority(u64, u64),
    /// The sender joined the independent set this phase.
    Joined,
    /// `Resolve`-round keep-alive from an undecided non-joiner: carries no
    /// information, but keeps the sender scheduled on the event-driven
    /// engine (a node that sends nothing and hears nothing is skipped).
    Active,
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Exchange,
    Resolve,
}

#[derive(Clone, Copy, PartialEq)]
enum Status {
    Undecided,
    In,
    Out,
}

/// Per-node protocol state.
pub struct State {
    phase: Phase,
    status: Status,
    priority: (u64, u64),
    tentative_join: bool,
    dominator_port: Option<usize>,
}

/// The distributed Luby algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistributedLuby;

impl RoundAlgorithm for DistributedLuby {
    type State = State;
    type Msg = Msg;
    type Output = (MisLabel, Option<usize>);

    fn init(&self, ctx: &NodeCtx, rng: &mut ChaCha8Rng) -> State {
        State {
            phase: Phase::Exchange,
            // An isolated node hears nothing, ever: it joins at birth
            // instead of through an empty-inbox exchange round.
            status: if ctx.degree == 0 { Status::In } else { Status::Undecided },
            priority: (rng.gen(), ctx.id),
            tentative_join: false,
            dominator_port: None,
        }
    }

    fn send(&self, state: &State, ctx: &NodeCtx) -> Vec<(usize, Msg)> {
        let msg = match (state.phase, state.status) {
            (Phase::Exchange, Status::Undecided) => {
                Msg::Priority(state.priority.0, state.priority.1)
            }
            (Phase::Resolve, Status::Undecided) if state.tentative_join => Msg::Joined,
            (Phase::Resolve, Status::Undecided) => {
                // Still competing but with nothing to announce: one
                // keep-alive keeps this node on the active frontier (its
                // Resolve step redraws the priority and flips the phase).
                return vec![(0, Msg::Active)];
            }
            // Decided nodes are silent — they leave the frontier.
            _ => return Vec::new(),
        };
        (0..ctx.degree).map(|p| (p, msg.clone())).collect()
    }

    fn receive(
        &self,
        state: &mut State,
        _ctx: &NodeCtx,
        inbox: &[(usize, Msg)],
        rng: &mut ChaCha8Rng,
    ) {
        // Decided nodes are inert (sparse-execution contract): state
        // frozen, no RNG draw, regardless of what neighbors still send.
        if state.status != Status::Undecided {
            return;
        }
        match state.phase {
            Phase::Exchange => {
                let mut is_min = true;
                for (_port, msg) in inbox {
                    if let Msg::Priority(p, id) = msg {
                        if (*p, *id) < state.priority {
                            is_min = false;
                        }
                    }
                }
                // A node with no undecided neighbors joins outright.
                state.tentative_join = is_min;
                state.phase = Phase::Resolve;
            }
            Phase::Resolve => {
                if state.tentative_join {
                    state.status = Status::In;
                } else if let Some((port, _)) = inbox.iter().find(|(_, m)| *m == Msg::Joined) {
                    state.status = Status::Out;
                    state.dominator_port = Some(*port);
                }
                state.tentative_join = false;
                state.priority = (rng.gen(), state.priority.1);
                state.phase = Phase::Exchange;
            }
        }
    }

    fn output(&self, state: &State, _ctx: &NodeCtx) -> Option<(MisLabel, Option<usize>)> {
        match state.status {
            Status::Undecided => None,
            Status::In => Some((MisLabel::InSet, None)),
            Status::Out => Some((MisLabel::OutSet, state.dominator_port)),
        }
    }
}

/// Result of a distributed Luby run.
#[derive(Clone, Debug)]
pub struct DistributedLubyOutcome {
    /// The assembled MIS labeling.
    pub labeling: Labeling<MisLabel>,
    /// Message-passing rounds executed (2 per Luby phase).
    pub rounds: u32,
}

impl DistributedLubyOutcome {
    /// Decodes the labeling into a plain certifiable
    /// [`lcl_certify::Solution`].
    ///
    /// # Errors
    ///
    /// [`lcl_certify::Violation::Decode`] if the labeling is malformed.
    pub fn solution(
        &self,
        g: &lcl_graph::Graph,
    ) -> Result<lcl_certify::Solution, lcl_certify::Violation> {
        lcl_certify::decode::mis(g, &self.labeling)
    }
}

/// Runs the protocol and assembles the global labeling.
///
/// # Panics
///
/// Panics on the [`try_run`] error cases.
#[must_use]
pub fn run(net: &Network, seed: u64) -> DistributedLubyOutcome {
    run_with(net, seed, &Sequential)
}

/// [`run`] with a pluggable [`NodeExecutor`].
///
/// # Panics
///
/// As [`run`].
#[must_use]
pub fn run_with<X: NodeExecutor>(net: &Network, seed: u64, exec: &X) -> DistributedLubyOutcome {
    try_run_with(net, seed, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run`]: a pathological instance fails this call instead of
/// panicking the process.
///
/// # Errors
///
/// [`AlgoError::Unsolvable`] on graphs with self-loops (MIS is ill-posed
/// there; the reason mentions "loopless"), [`AlgoError::RoundCapExceeded`]
/// if the protocol does not terminate within `8·(log₂ n + 4)` phases — an
/// event of vanishing probability that would indicate a bug.
pub fn try_run(net: &Network, seed: u64) -> Result<DistributedLubyOutcome, AlgoError> {
    try_run_with(net, seed, &Sequential)
}

/// [`try_run`] with a pluggable [`NodeExecutor`]: per-node protocol steps
/// fan out across the executor, with the outcome bit-identical to
/// [`try_run`] under **any** executor (per-node RNG streams never
/// interleave).
///
/// # Errors
///
/// As [`try_run`].
pub fn try_run_with<X: NodeExecutor>(
    net: &Network,
    seed: u64,
    exec: &X,
) -> Result<DistributedLubyOutcome, AlgoError> {
    reject_self_loops(net)?;
    let cap = round_cap(net);
    assemble_outcome(net, run_rounds_with(net, &DistributedLuby, seed, cap, exec), cap)
}

/// [`try_run_with`] scheduled over **component shards**
/// ([`run_rounds_sharded_with`]): the executor's work units are whole
/// connected components, each simulated on shard-local scratch. The
/// outcome is bit-identical to [`try_run`] — same labeling, same round
/// count — because no Luby message ever crosses a component boundary and
/// node RNG streams key on preserved LOCAL ids.
///
/// # Errors
///
/// As [`try_run`].
pub fn try_run_sharded_with<X: NodeExecutor>(
    net: &Network,
    seed: u64,
    exec: &X,
) -> Result<DistributedLubyOutcome, AlgoError> {
    reject_self_loops(net)?;
    let cap = round_cap(net);
    assemble_outcome(net, run_rounds_sharded_with(net, &DistributedLuby, seed, cap, exec), cap)
}

fn reject_self_loops(net: &Network) -> Result<(), AlgoError> {
    if net.graph().edges().any(|e| net.graph().is_self_loop(e)) {
        return Err(AlgoError::Unsolvable {
            algo: "luby-rounds",
            reason: "distributed Luby requires a loopless graph".into(),
        });
    }
    Ok(())
}

fn round_cap(net: &Network) -> u32 {
    16 * ((net.known_n().max(2) as f64).log2() as u32 + 4)
}

fn assemble_outcome(
    net: &Network,
    out: RoundOutcome<<DistributedLuby as RoundAlgorithm>::Output>,
    cap: u32,
) -> Result<DistributedLubyOutcome, AlgoError> {
    if !out.trace.completed {
        return Err(AlgoError::RoundCapExceeded { algo: "luby-rounds", cap });
    }
    let rounds = out.trace.rounds;
    let locals: Vec<NodeLocalOutput<MisLabel>> = out
        .into_outputs()
        .into_iter()
        .enumerate()
        .map(|(i, (label, dom))| {
            let v = lcl_graph::NodeId(i as u32);
            let degree = net.graph().degree(v);
            NodeLocalOutput {
                node: label,
                halves: (0..degree)
                    .map(|p| if dom == Some(p) { MisLabel::Pointer } else { MisLabel::NoPointer })
                    .collect(),
                edges: vec![MisLabel::Blank; degree],
            }
        })
        .collect();
    let labeling = assemble(net.graph(), &locals).expect("edge labels agree trivially");
    let outcome = DistributedLubyOutcome { labeling, rounds };
    if lcl_certify::enabled() {
        crate::error::self_certify_decoded(net.graph(), outcome.solution(net.graph()));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::check;
    use lcl_core::problems::MaximalIndependentSet;
    use lcl_graph::gen;
    use lcl_local::IdAssignment;

    #[test]
    fn distributed_luby_verifies_on_assorted_graphs() {
        for (g, seed) in [
            (gen::cycle(21), 1u64),
            (gen::random_regular(60, 3, 2).unwrap(), 2),
            (gen::complete(6), 3),
            (gen::grid(6, 5), 4),
            (gen::random_tree(40, 5), 5),
        ] {
            let net = Network::new(g, IdAssignment::Shuffled { seed });
            let out = run(&net, seed);
            let input = Labeling::uniform(net.graph(), ());
            check(&MaximalIndependentSet, net.graph(), &input, &out.labeling).expect_ok();
        }
    }

    #[test]
    fn rounds_are_twice_phases_and_logarithmic() {
        let g = gen::random_regular(512, 3, 7).unwrap();
        let net = Network::new(g, IdAssignment::Shuffled { seed: 7 });
        let out = run(&net, 7);
        assert_eq!(out.rounds % 2, 0, "phases are exchange/resolve pairs");
        assert!(out.rounds <= 60, "took {}", out.rounds);
    }

    #[test]
    fn agrees_in_spirit_with_centralized_luby() {
        // Both produce *valid* MIS (not necessarily the same set — the
        // randomness differs); validity is the contract.
        let g = gen::random_regular(80, 3, 9).unwrap();
        let net = Network::new(g, IdAssignment::Shuffled { seed: 9 });
        let dist = run(&net, 11);
        let cent = crate::luby::run(&net, 11).unwrap();
        let input = Labeling::uniform(net.graph(), ());
        check(&MaximalIndependentSet, net.graph(), &input, &dist.labeling).expect_ok();
        check(&MaximalIndependentSet, net.graph(), &input, &cent.labeling).expect_ok();
    }

    #[test]
    fn isolated_nodes_join_immediately() {
        let mut g = gen::path(2);
        g.add_node();
        let net = Network::new(g, IdAssignment::Sequential);
        let out = run(&net, 1);
        assert_eq!(*out.labeling.node(lcl_graph::NodeId(2)), MisLabel::InSet);
    }

    #[test]
    fn self_loop_is_typed_unsolvable() {
        let mut g = gen::path(2);
        g.add_edge(lcl_graph::NodeId(0), lcl_graph::NodeId(0));
        let net = Network::new(g, IdAssignment::Sequential);
        match try_run(&net, 1) {
            Err(AlgoError::Unsolvable { algo: "luby-rounds", reason }) => {
                assert!(reason.contains("loopless"));
            }
            other => panic!("expected Unsolvable, got {other:?}"),
        }
    }
}
