//! Property tests for labeling assembly and the checker plumbing.

use lcl_core::problems::{
    ColoringLabel, EdgeColoring, EdgeColoringLabel, MatchingLabel, MaximalIndependentSet,
    MaximalMatching, MisLabel, Orient, SinklessOrientation, Trivial, VertexColoring,
};
use lcl_core::{assemble, check, Labeling, NeLcl, NodeLocalOutput, Violation};
use lcl_graph::{gen, Graph, NodeId};
use proptest::prelude::*;

/// Splits a global labeling into the per-node outputs each node would emit
/// (agreeing by construction, since they come from one labeling).
fn split<L: Clone>(g: &Graph, lab: &Labeling<L>) -> Vec<NodeLocalOutput<L>> {
    g.nodes()
        .map(|v| NodeLocalOutput {
            node: lab.node(v).clone(),
            halves: g.ports(v).iter().map(|&h| lab.half(h).clone()).collect(),
            edges: g.ports(v).iter().map(|h| lab.edge(h.edge()).clone()).collect(),
        })
        .collect()
}

/// The assemble → check roundtrip: splitting any output labeling into
/// per-node outputs and reassembling is the identity, and the checker's
/// verdict (including the exact violation list) is unchanged by the trip.
fn roundtrip_holds<P: NeLcl>(
    p: &P,
    g: &Graph,
    input: &Labeling<P::In>,
    out: &Labeling<P::Out>,
) -> Result<(), TestCaseError>
where
    P::Out: Eq,
{
    let assembled = assemble(g, &split(g, out)).expect("splits agree by construction");
    prop_assert_eq!(&assembled, out, "split + assemble must be the identity");
    prop_assert_eq!(check(p, g, input, out), check(p, g, input, &assembled));
    Ok(())
}

/// Deterministic per-element label noise.
fn mix(seed: u64, tag: u64, idx: u64) -> u64 {
    let mut z = seed
        .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(idx.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assemble_roundtrips_agreeing_outputs(n in 2usize..20, seed in 0u64..100) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        // Build agreeing outputs: edge label = edge id, half = id·2+side.
        let outs: Vec<NodeLocalOutput<u32>> = g
            .nodes()
            .map(|v| NodeLocalOutput {
                node: v.0,
                halves: g.ports(v).iter().map(|h| h.edge().0 * 2 + h.side().index() as u32).collect(),
                edges: g.ports(v).iter().map(|h| h.edge().0).collect(),
            })
            .collect();
        let lab = assemble(&g, &outs).expect("agreeing");
        for v in g.nodes() {
            prop_assert_eq!(*lab.node(v), v.0);
        }
        for e in g.edges() {
            prop_assert_eq!(*lab.edge(e), e.0);
        }
        for h in g.half_edges() {
            prop_assert_eq!(*lab.half(h), h.edge().0 * 2 + h.side().index() as u32);
        }
    }

    #[test]
    fn any_single_disagreement_is_rejected(n in 2usize..12, k in 0usize..50, seed in 0u64..50) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let mut outs: Vec<NodeLocalOutput<u32>> = g
            .nodes()
            .map(|v| NodeLocalOutput {
                node: 0,
                halves: vec![0; g.degree(v)],
                edges: vec![7; g.degree(v)],
            })
            .collect();
        // Flip one edge proposal at one port of one node.
        let v = NodeId((k % g.node_count()) as u32);
        if g.degree(v) == 0 {
            return Ok(());
        }
        let port = k % g.degree(v);
        // Skip self-loop double ports where the node would disagree with
        // itself only if both slots differ — flipping one slot suffices.
        outs[v.index()].edges[port] = 8;
        prop_assert!(assemble(&g, &outs).is_err());
    }

    #[test]
    fn checker_violation_count_matches_flips(flips in 1usize..5, seed in 0u64..50) {
        // Orient a cycle consistently, then flip `flips` distinct edges'
        // both halves (reversing them): reversal keeps edge constraints
        // fine but creates sinks/sources; the checker must flag at least
        // one node per flipped edge region and never accept.
        let n = 20;
        let g = gen::cycle(n);
        let input = Labeling::uniform(&g, ());
        let mut out = Labeling::build(
            &g,
            |_| Orient::Blank,
            |_| Orient::Blank,
            |h| if h.side() == lcl_graph::Side::A { Orient::Out } else { Orient::In },
        );
        let mut chosen = std::collections::BTreeSet::new();
        let mut x = seed;
        while chosen.len() < flips {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            chosen.insert((x >> 33) as usize % n);
        }
        for &e in &chosen {
            let e = lcl_graph::EdgeId(e as u32);
            *out.half_mut(lcl_graph::HalfEdge::new(e, lcl_graph::Side::A)) = Orient::In;
            *out.half_mut(lcl_graph::HalfEdge::new(e, lcl_graph::Side::B)) = Orient::Out;
        }
        let res = check(&SinklessOrientation { min_constrained_degree: 2 }, &g, &input, &out);
        prop_assert!(!res.is_ok());
        // Every violation is a node violation (edge constraints intact).
        prop_assert!(res
            .violations
            .iter()
            .all(|v| matches!(v, Violation::Node(_, _))));
    }

    // --- assemble → check roundtrip across the whole problem zoo ---------
    //
    // For every problem, arbitrary (not necessarily correct) output
    // labelings are split into per-node outputs and reassembled; the trip
    // must be the identity and must not change the checker's verdict.

    #[test]
    fn roundtrip_sinkless(n in 2usize..14, seed in 0u64..200) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let input = Labeling::uniform(&g, ());
        let out = Labeling::build(
            &g,
            |_| Orient::Blank,
            |_| Orient::Blank,
            |h| if mix(seed, 1, u64::from(h.edge().0) * 2 + h.side().index() as u64) & 1 == 0 {
                Orient::Out
            } else {
                Orient::In
            },
        );
        roundtrip_holds(&SinklessOrientation::new(), &g, &input, &out)?;
    }

    #[test]
    fn roundtrip_vertex_coloring(n in 2usize..14, seed in 0u64..200, palette in 2u32..6) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let input = Labeling::uniform(&g, ());
        let out = Labeling::build(
            &g,
            // One extra color so out-of-palette violations occur too.
            |v| ColoringLabel::Color(mix(seed, 2, u64::from(v.0)) as u32 % (palette + 1)),
            |_| ColoringLabel::Blank,
            |_| ColoringLabel::Blank,
        );
        roundtrip_holds(&VertexColoring::new(palette), &g, &input, &out)?;
    }

    #[test]
    fn roundtrip_matching(n in 2usize..14, seed in 0u64..200) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let input = Labeling::uniform(&g, ());
        let out = Labeling::build(
            &g,
            |v| if mix(seed, 3, u64::from(v.0)) & 1 == 0 {
                MatchingLabel::Matched
            } else {
                MatchingLabel::Free
            },
            |e| if mix(seed, 4, u64::from(e.0)) & 3 == 0 {
                MatchingLabel::InMatching
            } else {
                MatchingLabel::NotInMatching
            },
            |_| MatchingLabel::Blank,
        );
        roundtrip_holds(&MaximalMatching, &g, &input, &out)?;
    }

    #[test]
    fn roundtrip_mis(n in 2usize..14, seed in 0u64..200) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let input = Labeling::uniform(&g, ());
        let out = Labeling::build(
            &g,
            |v| if mix(seed, 5, u64::from(v.0)) & 1 == 0 {
                MisLabel::InSet
            } else {
                MisLabel::OutSet
            },
            |_| MisLabel::Blank,
            |h| if mix(seed, 6, u64::from(h.edge().0) * 2 + h.side().index() as u64) & 3 == 0 {
                MisLabel::Pointer
            } else {
                MisLabel::NoPointer
            },
        );
        roundtrip_holds(&MaximalIndependentSet, &g, &input, &out)?;
    }

    #[test]
    fn roundtrip_edge_coloring(n in 2usize..14, seed in 0u64..200, palette in 2u32..6) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let input = Labeling::uniform(&g, ());
        let out = Labeling::build(
            &g,
            |_| EdgeColoringLabel::Blank,
            |e| EdgeColoringLabel::Color(mix(seed, 7, u64::from(e.0)) as u32 % (palette + 1)),
            |_| EdgeColoringLabel::Blank,
        );
        roundtrip_holds(&EdgeColoring::new(palette), &g, &input, &out)?;
    }

    #[test]
    fn roundtrip_trivial(n in 2usize..14, seed in 0u64..200) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let input = Labeling::uniform(&g, ());
        let out = Labeling::uniform(&g, ());
        roundtrip_holds(&Trivial, &g, &input, &out)?;
    }
}
