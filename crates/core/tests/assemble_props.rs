//! Property tests for labeling assembly and the checker plumbing.

use lcl_core::problems::{Orient, SinklessOrientation};
use lcl_core::{assemble, check, Labeling, NodeLocalOutput, Violation};
use lcl_graph::{gen, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assemble_roundtrips_agreeing_outputs(n in 2usize..20, seed in 0u64..100) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        // Build agreeing outputs: edge label = edge id, half = id·2+side.
        let outs: Vec<NodeLocalOutput<u32>> = g
            .nodes()
            .map(|v| NodeLocalOutput {
                node: v.0,
                halves: g.ports(v).iter().map(|h| h.edge.0 * 2 + h.side.index() as u32).collect(),
                edges: g.ports(v).iter().map(|h| h.edge.0).collect(),
            })
            .collect();
        let lab = assemble(&g, &outs).expect("agreeing");
        for v in g.nodes() {
            prop_assert_eq!(*lab.node(v), v.0);
        }
        for e in g.edges() {
            prop_assert_eq!(*lab.edge(e), e.0);
        }
        for h in g.half_edges() {
            prop_assert_eq!(*lab.half(h), h.edge.0 * 2 + h.side.index() as u32);
        }
    }

    #[test]
    fn any_single_disagreement_is_rejected(n in 2usize..12, k in 0usize..50, seed in 0u64..50) {
        let g = gen::random_regular_multigraph(n * 2, 3, seed).unwrap();
        let mut outs: Vec<NodeLocalOutput<u32>> = g
            .nodes()
            .map(|v| NodeLocalOutput {
                node: 0,
                halves: vec![0; g.degree(v)],
                edges: vec![7; g.degree(v)],
            })
            .collect();
        // Flip one edge proposal at one port of one node.
        let v = NodeId((k % g.node_count()) as u32);
        if g.degree(v) == 0 {
            return Ok(());
        }
        let port = k % g.degree(v);
        // Skip self-loop double ports where the node would disagree with
        // itself only if both slots differ — flipping one slot suffices.
        outs[v.index()].edges[port] = 8;
        prop_assert!(assemble(&g, &outs).is_err());
    }

    #[test]
    fn checker_violation_count_matches_flips(flips in 1usize..5, seed in 0u64..50) {
        // Orient a cycle consistently, then flip `flips` distinct edges'
        // both halves (reversing them): reversal keeps edge constraints
        // fine but creates sinks/sources; the checker must flag at least
        // one node per flipped edge region and never accept.
        let n = 20;
        let g = gen::cycle(n);
        let input = Labeling::uniform(&g, ());
        let mut out = Labeling::build(
            &g,
            |_| Orient::Blank,
            |_| Orient::Blank,
            |h| if h.side == lcl_graph::Side::A { Orient::Out } else { Orient::In },
        );
        let mut chosen = std::collections::BTreeSet::new();
        let mut x = seed;
        while chosen.len() < flips {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            chosen.insert((x >> 33) as usize % n);
        }
        for &e in &chosen {
            let e = lcl_graph::EdgeId(e as u32);
            *out.half_mut(lcl_graph::HalfEdge::new(e, lcl_graph::Side::A)) = Orient::In;
            *out.half_mut(lcl_graph::HalfEdge::new(e, lcl_graph::Side::B)) = Orient::Out;
        }
        let res = check(&SinklessOrientation { min_constrained_degree: 2 }, &g, &input, &out);
        prop_assert!(!res.is_ok());
        // Every violation is a node violation (edge constraints intact).
        prop_assert!(res
            .violations
            .iter()
            .all(|v| matches!(v, Violation::Node(_, _))));
    }
}
