//! Proper vertex coloring as an ne-LCL.

use crate::problem::{EdgeView, NeLcl, NodeView};
use serde::{Deserialize, Serialize};

/// Output alphabet for [`VertexColoring`]: a color on nodes, `Blank`
/// padding on edges and half-edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColoringLabel {
    /// A color in `{0, …, palette-1}`.
    Color(u32),
    /// Padding for edges and half-edges.
    Blank,
}

/// Proper vertex coloring with a fixed palette: adjacent nodes get distinct
/// colors from `{0, …, palette-1}`.
///
/// With `palette = 3` on cycle instances this is the classical
/// **3-coloring of cycles**, deterministic complexity `Θ(log* n)`
/// (Cole–Vishkin / Linial), one of the reference points of the paper's
/// Figure 1. With `palette = Δ + 1` it is the (Δ+1)-coloring problem.
///
/// A self-loop makes the instance unsatisfiable at that edge (a node cannot
/// differ from itself), which is the correct semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexColoring {
    /// Number of available colors.
    pub palette: u32,
}

impl VertexColoring {
    /// A coloring problem with the given palette size (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `palette == 0`.
    #[must_use]
    pub fn new(palette: u32) -> Self {
        assert!(palette >= 1, "palette must be nonempty");
        VertexColoring { palette }
    }
}

impl NeLcl for VertexColoring {
    type In = ();
    type Out = ColoringLabel;

    fn check_node(&self, view: &NodeView<'_, (), ColoringLabel>) -> Result<(), String> {
        match view.node_out {
            ColoringLabel::Color(c) if *c < self.palette => Ok(()),
            ColoringLabel::Color(c) => {
                Err(format!("color {c} outside palette of {}", self.palette))
            }
            ColoringLabel::Blank => Err("node must carry a color".into()),
        }
    }

    fn check_edge(&self, view: &EdgeView<'_, (), ColoringLabel>) -> Result<(), String> {
        if view.nodes_out[0] == view.nodes_out[1] {
            Err(format!("endpoints share color {:?}", view.nodes_out[0]))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::problem::{check, Violation};
    use lcl_graph::{gen, EdgeId, NodeId};

    fn color_by(g: &lcl_graph::Graph, f: impl Fn(NodeId) -> u32) -> Labeling<ColoringLabel> {
        Labeling::build(
            g,
            |v| ColoringLabel::Color(f(v)),
            |_| ColoringLabel::Blank,
            |_| ColoringLabel::Blank,
        )
    }

    #[test]
    fn proper_2_coloring_of_even_cycle() {
        let g = gen::cycle(6);
        let input = Labeling::uniform(&g, ());
        let out = color_by(&g, |v| v.0 % 2);
        check(&VertexColoring::new(2), &g, &input, &out).expect_ok();
    }

    #[test]
    fn odd_cycle_cannot_be_2_colored() {
        let g = gen::cycle(5);
        let input = Labeling::uniform(&g, ());
        let out = color_by(&g, |v| v.0 % 2);
        let res = check(&VertexColoring::new(2), &g, &input, &out);
        // The wrap-around edge joins two even-index nodes.
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(4), _))));
    }

    #[test]
    fn palette_bound_enforced() {
        let g = gen::path(2);
        let input = Labeling::uniform(&g, ());
        let out = color_by(&g, |v| v.0 + 5);
        let res = check(&VertexColoring::new(3), &g, &input, &out);
        assert_eq!(res.violations.len(), 2, "both nodes exceed the palette");
    }

    #[test]
    fn blank_node_rejected() {
        let g = gen::path(2);
        let input = Labeling::uniform(&g, ());
        let mut out = color_by(&g, |v| v.0);
        *out.node_mut(NodeId(0)) = ColoringLabel::Blank;
        assert!(!check(&VertexColoring::new(3), &g, &input, &out).is_ok());
    }

    #[test]
    fn self_loop_is_unsatisfiable() {
        let mut g = gen::path(2);
        g.add_edge(NodeId(1), NodeId(1));
        let input = Labeling::uniform(&g, ());
        let out = color_by(&g, |v| v.0);
        let res = check(&VertexColoring::new(9), &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(1), _))));
    }

    #[test]
    #[should_panic(expected = "palette")]
    fn empty_palette_rejected() {
        let _ = VertexColoring::new(0);
    }
}
