//! The trivial ne-LCL (complexity 0): a baseline for the landscape.

use crate::problem::{EdgeView, NeLcl, NodeView};
use serde::{Deserialize, Serialize};

/// The trivial problem: every labeling with the unit output is correct.
/// It anchors the `O(1)` corner of the paper's Figure-1 landscape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trivial;

impl NeLcl for Trivial {
    type In = ();
    type Out = ();

    fn check_node(&self, _view: &NodeView<'_, (), ()>) -> Result<(), String> {
        Ok(())
    }

    fn check_edge(&self, _view: &EdgeView<'_, (), ()>) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::problem::check;
    use lcl_graph::gen;

    #[test]
    fn everything_is_accepted() {
        let g = gen::random_regular(20, 3, 1).unwrap();
        let input = Labeling::uniform(&g, ());
        let output = Labeling::uniform(&g, ());
        check(&Trivial, &g, &input, &output).expect_ok();
    }
}
