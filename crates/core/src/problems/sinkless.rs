//! Sinkless orientation as an ne-LCL (Figure 3 of the paper).

use crate::problem::{EdgeView, NeLcl, NodeView};
use serde::{Deserialize, Serialize};

/// Output alphabet of sinkless orientation.
///
/// Half-edges carry `Out`/`In`; nodes and edges carry `Blank` (the paper's
/// "empty label" used to pad the single-alphabet encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orient {
    /// The edge leaves this endpoint.
    Out,
    /// The edge enters this endpoint.
    In,
    /// Padding for nodes and edges.
    Blank,
}

/// The sinkless-orientation ne-LCL.
///
/// * **Half-edge outputs**: every half-edge is labeled [`Orient::Out`]
///   (outgoing) or [`Orient::In`] (incoming).
/// * **Node constraint**: every *constrained* node has at least one
///   incident half-edge labeled `Out` — no constrained node is a sink.
/// * **Edge constraint**: the two half-edges of an edge are complementary
///   (one `Out`, one `In`), so the edge has one consistent direction.
///
/// Figure 3 of the paper constrains all nodes; its hard instances have
/// minimum degree 3, where this matches the standard formulation of Brandt
/// et al. (STOC 2016) in which only nodes of degree ≥ 3 must be non-sinks.
/// On graphs *with* low-degree nodes the all-nodes variant is unsatisfiable
/// (two leaves joined to the same path), so the degree-≥ 3 variant is the
/// default here and [`SinklessOrientation::strict`] opts into the
/// all-nodes variant for instances that support it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinklessOrientation {
    /// Nodes of degree at least this are forbidden from being sinks.
    pub min_constrained_degree: usize,
}

impl Default for SinklessOrientation {
    fn default() -> Self {
        SinklessOrientation { min_constrained_degree: 3 }
    }
}

impl SinklessOrientation {
    /// The standard variant: degree-≥ 3 nodes must not be sinks.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The all-nodes variant of Figure 3: every node must have an out-edge.
    #[must_use]
    pub fn strict() -> Self {
        SinklessOrientation { min_constrained_degree: 1 }
    }
}

impl NeLcl for SinklessOrientation {
    type In = ();
    type Out = Orient;

    fn check_node(&self, view: &NodeView<'_, (), Orient>) -> Result<(), String> {
        if *view.node_out != Orient::Blank {
            return Err("node label must be Blank".into());
        }
        for (p, &h) in view.halves_out.iter().enumerate() {
            if *h == Orient::Blank {
                return Err(format!("half-edge at port {p} must be oriented"));
            }
        }
        if view.degree >= self.min_constrained_degree
            && !view.halves_out.iter().any(|&&h| h == Orient::Out)
        {
            return Err(format!("sink of degree {}", view.degree));
        }
        Ok(())
    }

    fn check_edge(&self, view: &EdgeView<'_, (), Orient>) -> Result<(), String> {
        if *view.edge_out != Orient::Blank {
            return Err("edge label must be Blank".into());
        }
        match (view.halves_out[0], view.halves_out[1]) {
            (Orient::Out, Orient::In) | (Orient::In, Orient::Out) => Ok(()),
            (a, b) => Err(format!("half-edges not complementary: {a:?}/{b:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::problem::{check, Violation};
    use lcl_graph::{gen, EdgeId, HalfEdge, NodeId, Side};

    /// Orient every edge A→B (works on a directed-path construction).
    fn orient_all_a_to_b(g: &lcl_graph::Graph) -> Labeling<Orient> {
        Labeling::build(
            g,
            |_| Orient::Blank,
            |_| Orient::Blank,
            |h| if h.side() == Side::A { Orient::Out } else { Orient::In },
        )
    }

    #[test]
    fn consistent_cycle_orientation_is_accepted() {
        // cycle(n) builds edges i->i+1 and the closing edge (n-1)->0, all
        // stored with Side::A at the source, so A→B everywhere orients the
        // cycle consistently: no sinks.
        let g = gen::cycle(5);
        let input = Labeling::uniform(&g, ());
        let out = orient_all_a_to_b(&g);
        check(&SinklessOrientation::strict(), &g, &input, &out).expect_ok();
    }

    #[test]
    fn flipping_one_half_breaks_edge_constraint() {
        let g = gen::cycle(5);
        let input = Labeling::uniform(&g, ());
        let mut out = orient_all_a_to_b(&g);
        *out.half_mut(HalfEdge::new(EdgeId(2), Side::A)) = Orient::In;
        let res = check(&SinklessOrientation::strict(), &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(2), _))));
    }

    #[test]
    fn sink_is_rejected_exactly_at_the_sink() {
        let g = gen::cycle(4);
        let input = Labeling::uniform(&g, ());
        let mut out = orient_all_a_to_b(&g);
        // Make node 1 a sink: its two edges are e0 = (0,1) and e1 = (1,2).
        // e0 already points into node 1 (side B); flip e1 to point 2 -> 1.
        *out.half_mut(HalfEdge::new(EdgeId(1), Side::A)) = Orient::In;
        *out.half_mut(HalfEdge::new(EdgeId(1), Side::B)) = Orient::Out;
        let res = check(&SinklessOrientation::strict(), &g, &input, &out);
        assert_eq!(res.violations.len(), 1);
        assert!(matches!(res.violations[0], Violation::Node(NodeId(1), _)));
    }

    #[test]
    fn default_variant_ignores_low_degree_sinks() {
        // A path: both interior nodes have degree 2 < 3, so even a sink
        // there is fine under the default variant.
        let g = gen::path(3);
        let input = Labeling::uniform(&g, ());
        let mut out = orient_all_a_to_b(&g);
        // Point both edges into the middle node.
        *out.half_mut(HalfEdge::new(EdgeId(1), Side::A)) = Orient::In;
        *out.half_mut(HalfEdge::new(EdgeId(1), Side::B)) = Orient::Out;
        check(&SinklessOrientation::new(), &g, &input, &out).expect_ok();
        assert!(!check(&SinklessOrientation::strict(), &g, &input, &out).is_ok());
    }

    #[test]
    fn self_loop_satisfies_its_node() {
        let mut g = lcl_graph::Graph::new();
        let v = g.add_node();
        g.add_edge(v, v);
        g.add_edge(v, v);
        g.add_edge(v, v);
        let input = Labeling::uniform(&g, ());
        let out = orient_all_a_to_b(&g);
        // Degree 6 node; loops oriented consistently give it out-edges.
        check(&SinklessOrientation::new(), &g, &input, &out).expect_ok();
    }

    #[test]
    fn unoriented_half_is_rejected() {
        let g = gen::cycle(3);
        let input = Labeling::uniform(&g, ());
        let mut out = orient_all_a_to_b(&g);
        *out.half_mut(HalfEdge::new(EdgeId(0), Side::A)) = Orient::Blank;
        let res = check(&SinklessOrientation::new(), &g, &input, &out);
        assert!(!res.is_ok());
        // Both the node constraint (unoriented port) and the edge constraint
        // (non-complementary) fire.
        assert!(res.violations.len() >= 2);
    }
}
