//! Proper edge coloring as an ne-LCL.

use crate::problem::{EdgeView, NeLcl, NodeView};
use serde::{Deserialize, Serialize};

/// Output alphabet for [`EdgeColoring`]: a color on edges, `Blank` padding
/// on nodes and half-edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeColoringLabel {
    /// A color in `{0, …, palette-1}`.
    Color(u32),
    /// Padding for nodes and half-edges.
    Blank,
}

/// Proper edge coloring with a fixed palette: edges sharing an endpoint
/// get distinct colors.
///
/// With `palette = 2Δ − 1` this is the classical greedy-feasible regime
/// (the `(2Δ−1)`-edge-coloring referenced alongside the paper's Figure 1
/// landscape, deterministic complexity `Θ(log* n)` for constant `Δ` by
/// Linial-style reductions on the line graph).
///
/// The conflict relation is entirely node-local — two incident edges with
/// equal colors — so the node constraint carries it; self-loops conflict
/// with themselves and make the instance unsatisfiable at their node,
/// which is the correct semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeColoring {
    /// Number of available colors.
    pub palette: u32,
}

impl EdgeColoring {
    /// An edge-coloring problem with the given palette size (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `palette == 0`.
    #[must_use]
    pub fn new(palette: u32) -> Self {
        assert!(palette >= 1, "palette must be nonempty");
        EdgeColoring { palette }
    }
}

impl NeLcl for EdgeColoring {
    type In = ();
    type Out = EdgeColoringLabel;

    fn check_node(&self, view: &NodeView<'_, (), EdgeColoringLabel>) -> Result<(), String> {
        let mut seen = Vec::with_capacity(view.degree);
        for (p, &e) in view.edges_out.iter().enumerate() {
            match e {
                EdgeColoringLabel::Color(c) => {
                    if *c >= self.palette {
                        return Err(format!("color {c} outside palette of {}", self.palette));
                    }
                    if seen.contains(c) {
                        return Err(format!("two incident edges share color {c} (port {p})"));
                    }
                    seen.push(*c);
                }
                EdgeColoringLabel::Blank => {
                    return Err(format!("edge at port {p} is uncolored"));
                }
            }
        }
        Ok(())
    }

    fn check_edge(&self, view: &EdgeView<'_, (), EdgeColoringLabel>) -> Result<(), String> {
        match view.edge_out {
            EdgeColoringLabel::Color(_) => Ok(()),
            EdgeColoringLabel::Blank => Err("edge must carry a color".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::problem::{check, Violation};
    use lcl_graph::{gen, EdgeId, NodeId};

    fn color_edges(g: &lcl_graph::Graph, f: impl Fn(EdgeId) -> u32) -> Labeling<EdgeColoringLabel> {
        Labeling::build(
            g,
            |_| EdgeColoringLabel::Blank,
            |e| EdgeColoringLabel::Color(f(e)),
            |_| EdgeColoringLabel::Blank,
        )
    }

    #[test]
    fn alternating_coloring_of_even_cycle() {
        let g = gen::cycle(6);
        let input = Labeling::uniform(&g, ());
        let out = color_edges(&g, |e| e.0 % 2);
        check(&EdgeColoring::new(2), &g, &input, &out).expect_ok();
    }

    #[test]
    fn conflict_detected_at_shared_endpoint() {
        let g = gen::path(3); // edges 0 and 1 share node 1
        let input = Labeling::uniform(&g, ());
        let out = color_edges(&g, |_| 0);
        let res = check(&EdgeColoring::new(3), &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Node(NodeId(1), _))));
    }

    #[test]
    fn palette_bound_enforced() {
        let g = gen::path(2);
        let input = Labeling::uniform(&g, ());
        let out = color_edges(&g, |_| 5);
        assert!(!check(&EdgeColoring::new(3), &g, &input, &out).is_ok());
    }

    #[test]
    fn self_loop_is_unsatisfiable() {
        let mut g = gen::path(2);
        g.add_edge(NodeId(0), NodeId(0));
        let input = Labeling::uniform(&g, ());
        let out = color_edges(&g, |e| e.0);
        // The loop occupies two ports of node 0 with the same color.
        let res = check(&EdgeColoring::new(9), &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Node(NodeId(0), _))));
    }

    #[test]
    fn blank_edge_rejected() {
        let g = gen::path(2);
        let input = Labeling::uniform(&g, ());
        let mut out = color_edges(&g, |e| e.0);
        *out.edge_mut(EdgeId(0)) = EdgeColoringLabel::Blank;
        assert!(!check(&EdgeColoring::new(3), &g, &input, &out).is_ok());
    }
}
