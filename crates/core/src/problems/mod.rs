//! The problem zoo.
//!
//! These are the concrete ne-LCLs used by the experiments: the paper's
//! running example **sinkless orientation** (Figure 3), and the classical
//! problems populating the Figure-1 complexity landscape (vertex coloring,
//! maximal matching, maximal independent set, and the trivial problem).

mod coloring;
mod edge_coloring;
mod matching;
mod mis;
mod sinkless;
mod trivial;

pub use coloring::{ColoringLabel, VertexColoring};
pub use edge_coloring::{EdgeColoring, EdgeColoringLabel};
pub use matching::{MatchingLabel, MaximalMatching};
pub use mis::{MaximalIndependentSet, MisLabel};
pub use sinkless::{Orient, SinklessOrientation};
pub use trivial::Trivial;
