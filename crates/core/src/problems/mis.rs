//! Maximal independent set as an ne-LCL.

use crate::problem::{EdgeView, NeLcl, NodeView};
use serde::{Deserialize, Serialize};

/// Output alphabet for [`MaximalIndependentSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MisLabel {
    /// Node: in the independent set.
    InSet,
    /// Node: dominated by a neighbor in the set.
    OutSet,
    /// Half-edge at an `OutSet` node: points to its dominator.
    Pointer,
    /// Half-edge: no pointer.
    NoPointer,
    /// Padding for edges.
    Blank,
}

/// Maximal independent set: no two set nodes are adjacent (independence),
/// and every non-set node has a set neighbor (maximality).
///
/// Maximality is not directly a node predicate — a node cannot see its
/// neighbors' membership — so the standard ne-LCL encoding adds a
/// **dominator pointer**: every `OutSet` node marks exactly one incident
/// half-edge `Pointer`, and the edge constraint verifies the pointed-to
/// endpoint is `InSet`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaximalIndependentSet;

impl NeLcl for MaximalIndependentSet {
    type In = ();
    type Out = MisLabel;

    fn check_node(&self, view: &NodeView<'_, (), MisLabel>) -> Result<(), String> {
        let pointers = view.halves_out.iter().filter(|&&&h| h == MisLabel::Pointer).count();
        match view.node_out {
            MisLabel::InSet if pointers == 0 => Ok(()),
            MisLabel::InSet => Err("set node must not point".into()),
            MisLabel::OutSet if pointers == 1 => Ok(()),
            MisLabel::OutSet => Err(format!("OutSet node with {pointers} pointers")),
            other => Err(format!("node must be InSet or OutSet, got {other:?}")),
        }
    }

    fn check_edge(&self, view: &EdgeView<'_, (), MisLabel>) -> Result<(), String> {
        if view.nodes_out[0] == &MisLabel::InSet && view.nodes_out[1] == &MisLabel::InSet {
            return Err("adjacent set nodes".into());
        }
        for side in 0..2 {
            if *view.halves_out[side] == MisLabel::Pointer
                && *view.nodes_out[1 - side] != MisLabel::InSet
            {
                return Err("pointer to a non-set node".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::problem::{check, Violation};
    use lcl_graph::{gen, EdgeId, Graph, HalfEdge, NodeId};

    /// Builds a labeling from a membership set, pointing each out-node at
    /// its first in-set neighbor.
    fn mis_labeling(g: &Graph, in_set: &[u32]) -> Labeling<MisLabel> {
        let member: std::collections::HashSet<u32> = in_set.iter().copied().collect();
        let mut lab = Labeling::build(
            g,
            |v| if member.contains(&v.0) { MisLabel::InSet } else { MisLabel::OutSet },
            |_| MisLabel::Blank,
            |_| MisLabel::NoPointer,
        );
        for v in g.nodes() {
            if member.contains(&v.0) {
                continue;
            }
            if let Some(&h) = g.ports(v).iter().find(|h| member.contains(&g.half_edge_peer(**h).0))
            {
                *lab.half_mut(h) = MisLabel::Pointer;
            }
        }
        lab
    }

    #[test]
    fn valid_mis_on_path() {
        let g = gen::path(5);
        let input = Labeling::uniform(&g, ());
        let out = mis_labeling(&g, &[0, 2, 4]);
        check(&MaximalIndependentSet, &g, &input, &out).expect_ok();
    }

    #[test]
    fn adjacent_members_rejected() {
        let g = gen::path(3);
        let input = Labeling::uniform(&g, ());
        let out = mis_labeling(&g, &[0, 1]);
        let res = check(&MaximalIndependentSet, &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(0), _))));
    }

    #[test]
    fn undominated_node_rejected_via_missing_pointer() {
        let g = gen::path(3);
        let input = Labeling::uniform(&g, ());
        // Only node 0 in set; node 2 has no set neighbor, so it cannot
        // produce a valid pointer.
        let out = mis_labeling(&g, &[0]);
        let res = check(&MaximalIndependentSet, &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Node(NodeId(2), _))));
    }

    #[test]
    fn pointer_to_non_member_rejected() {
        let g = gen::path(2);
        let input = Labeling::uniform(&g, ());
        let mut out = mis_labeling(&g, &[]);
        // Both out of set, each pointing at the other: node constraints pass
        // (one pointer each) but the edge constraint rejects.
        *out.half_mut(HalfEdge::new(EdgeId(0), lcl_graph::Side::A)) = MisLabel::Pointer;
        *out.half_mut(HalfEdge::new(EdgeId(0), lcl_graph::Side::B)) = MisLabel::Pointer;
        let res = check(&MaximalIndependentSet, &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(0), _))));
    }

    #[test]
    fn self_loop_node_cannot_join_set() {
        let mut g = gen::path(2);
        g.add_edge(NodeId(0), NodeId(0));
        let input = Labeling::uniform(&g, ());
        // Node 0 in the set: the loop's edge constraint sees InSet twice.
        let out = mis_labeling(&g, &[0]);
        let res = check(&MaximalIndependentSet, &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(1), _))));
    }
}
