//! Maximal matching as an ne-LCL.

use crate::problem::{EdgeView, NeLcl, NodeView};
use serde::{Deserialize, Serialize};

/// Output alphabet for [`MaximalMatching`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchingLabel {
    /// Node: matched by exactly one incident edge.
    Matched,
    /// Node: unmatched (all neighbors must be matched).
    Free,
    /// Edge: in the matching.
    InMatching,
    /// Edge: not in the matching.
    NotInMatching,
    /// Padding for half-edges.
    Blank,
}

/// Maximal matching: a set `M` of edges such that no two share an endpoint
/// (matching) and no edge can be added (maximality).
///
/// ne-LCL encoding: nodes output `Matched`/`Free`, edges output
/// `InMatching`/`NotInMatching`.
///
/// * Node constraint: a `Matched` node has exactly one incident
///   `InMatching` edge; a `Free` node has none.
/// * Edge constraint: an `InMatching` edge has both endpoints `Matched`;
///   a `NotInMatching` edge has at least one endpoint `Matched`
///   (maximality — otherwise the edge could be added).
///
/// Self-loops cannot be matched (they would count twice at their node) and
/// make their node's `Free` option unusable, so loopless instances are
/// assumed, as is standard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaximalMatching;

impl NeLcl for MaximalMatching {
    type In = ();
    type Out = MatchingLabel;

    fn check_node(&self, view: &NodeView<'_, (), MatchingLabel>) -> Result<(), String> {
        let incident_matched =
            view.edges_out.iter().filter(|&&&e| e == MatchingLabel::InMatching).count();
        match view.node_out {
            MatchingLabel::Matched if incident_matched == 1 => Ok(()),
            MatchingLabel::Matched => {
                Err(format!("Matched node with {incident_matched} matched edges"))
            }
            MatchingLabel::Free if incident_matched == 0 => Ok(()),
            MatchingLabel::Free => Err(format!("Free node with {incident_matched} matched edges")),
            other => Err(format!("node must be Matched or Free, got {other:?}")),
        }
    }

    fn check_edge(&self, view: &EdgeView<'_, (), MatchingLabel>) -> Result<(), String> {
        match view.edge_out {
            MatchingLabel::InMatching => {
                if view.nodes_out.iter().all(|&&n| n == MatchingLabel::Matched) {
                    Ok(())
                } else {
                    Err("matched edge with an unmatched endpoint".into())
                }
            }
            MatchingLabel::NotInMatching => {
                if view.nodes_out.iter().any(|&&n| n == MatchingLabel::Matched) {
                    Ok(())
                } else {
                    Err("both endpoints free: matching not maximal".into())
                }
            }
            other => Err(format!("edge must be labeled In/NotInMatching, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::problem::{check, Violation};
    use lcl_graph::{gen, EdgeId, NodeId};

    /// Builds the labeling for a given edge set.
    fn matching_labeling(g: &lcl_graph::Graph, edges: &[u32]) -> Labeling<MatchingLabel> {
        let in_m: std::collections::HashSet<u32> = edges.iter().copied().collect();
        let mut matched = vec![false; g.node_count()];
        for &e in edges {
            let [a, b] = g.endpoints(EdgeId(e));
            matched[a.index()] = true;
            matched[b.index()] = true;
        }
        Labeling::build(
            g,
            |v| if matched[v.index()] { MatchingLabel::Matched } else { MatchingLabel::Free },
            |e| {
                if in_m.contains(&e.0) {
                    MatchingLabel::InMatching
                } else {
                    MatchingLabel::NotInMatching
                }
            },
            |_| MatchingLabel::Blank,
        )
    }

    #[test]
    fn perfect_matching_on_even_path() {
        let g = gen::path(4); // edges 0-1, 1-2, 2-3
        let input = Labeling::uniform(&g, ());
        let out = matching_labeling(&g, &[0, 2]);
        check(&MaximalMatching, &g, &input, &out).expect_ok();
    }

    #[test]
    fn maximal_but_not_perfect_is_fine() {
        let g = gen::path(3);
        let input = Labeling::uniform(&g, ());
        let out = matching_labeling(&g, &[0]);
        check(&MaximalMatching, &g, &input, &out).expect_ok();
    }

    #[test]
    fn non_maximal_rejected_at_free_free_edge() {
        let g = gen::path(4);
        let input = Labeling::uniform(&g, ());
        let out = matching_labeling(&g, &[0]); // edge 2 has both ends free
        let res = check(&MaximalMatching, &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Edge(EdgeId(2), _))));
    }

    #[test]
    fn overlapping_edges_rejected_at_shared_node() {
        let g = gen::path(3);
        let input = Labeling::uniform(&g, ());
        let out = matching_labeling(&g, &[0, 1]); // node 1 doubly matched
        let res = check(&MaximalMatching, &g, &input, &out);
        assert!(res.violations.iter().any(|v| matches!(v, Violation::Node(NodeId(1), _))));
    }

    #[test]
    fn lying_about_matched_status_rejected() {
        let g = gen::path(2);
        let input = Labeling::uniform(&g, ());
        let mut out = matching_labeling(&g, &[0]);
        *out.node_mut(NodeId(1)) = MatchingLabel::Free;
        let res = check(&MaximalMatching, &g, &input, &out);
        assert!(!res.is_ok());
    }
}
