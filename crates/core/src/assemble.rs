//! Assembling a global [`Labeling`] from per-node local outputs.

use crate::labeling::Labeling;
use lcl_graph::{EdgeId, Graph, NodeId};
use std::error::Error;
use std::fmt;

/// What one node emits in a solution: a label for itself and, per incident
/// port, a label for the half-edge on its side and a *proposal* for the
/// edge label.
///
/// The paper requires that for every edge `e = {u, v}` "nodes `u` and `v`
/// have to choose the same output label for `e`"; [`assemble`] enforces
/// exactly that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeLocalOutput<L> {
    /// Label the node assigns to itself.
    pub node: L,
    /// Per port: label for the half-edge `(v, e)` on this node's side.
    pub halves: Vec<L>,
    /// Per port: this node's proposal for the edge label of the edge at
    /// that port.
    pub edges: Vec<L>,
}

/// Failure to merge per-node outputs into a labeling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssembleError {
    /// A node emitted the wrong number of per-port labels.
    DegreeMismatch {
        /// The offending node.
        node: NodeId,
        /// Its degree in the graph.
        expected: usize,
        /// How many port labels it emitted.
        got: usize,
    },
    /// The two endpoints of an edge proposed different edge labels.
    EdgeDisagreement {
        /// The edge whose endpoints disagree.
        edge: EdgeId,
    },
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::DegreeMismatch { node, expected, got } => {
                write!(f, "node {node} emitted {got} port labels, degree is {expected}")
            }
            AssembleError::EdgeDisagreement { edge } => {
                write!(f, "endpoints of {edge} proposed different edge labels")
            }
        }
    }
}

impl Error for AssembleError {}

/// Merges per-node outputs (indexed by node) into a global labeling.
///
/// # Errors
///
/// Returns [`AssembleError::DegreeMismatch`] if a node labeled the wrong
/// number of ports, and [`AssembleError::EdgeDisagreement`] if the two
/// endpoints of an edge proposed different labels for it. For a self-loop
/// both proposals come from the same node (its two ports) and must still
/// agree.
///
/// # Panics
///
/// Panics if `outputs.len() != g.node_count()`.
pub fn assemble<L: Clone + Eq>(
    g: &Graph,
    outputs: &[NodeLocalOutput<L>],
) -> Result<Labeling<L>, AssembleError> {
    assert_eq!(outputs.len(), g.node_count(), "one output per node required");
    for v in g.nodes() {
        let o = &outputs[v.index()];
        let d = g.degree(v);
        if o.halves.len() != d || o.edges.len() != d {
            return Err(AssembleError::DegreeMismatch {
                node: v,
                expected: d,
                got: o.halves.len().max(o.edges.len()),
            });
        }
    }

    let mut edge_labels: Vec<Option<L>> = vec![None; g.edge_count()];
    let mut half_labels: Vec<[Option<L>; 2]> = vec![[None, None]; g.edge_count()];
    for v in g.nodes() {
        let o = &outputs[v.index()];
        for (port, &h) in g.ports(v).iter().enumerate() {
            half_labels[h.edge().index()][h.side().index()] = Some(o.halves[port].clone());
            match &edge_labels[h.edge().index()] {
                None => edge_labels[h.edge().index()] = Some(o.edges[port].clone()),
                Some(existing) => {
                    if *existing != o.edges[port] {
                        return Err(AssembleError::EdgeDisagreement { edge: h.edge() });
                    }
                }
            }
        }
    }

    let node = outputs.iter().map(|o| o.node.clone()).collect();
    let edge = edge_labels
        .into_iter()
        .map(|l| l.expect("every edge has two incidences, so a label"))
        .collect();
    let half = half_labels
        .into_iter()
        .map(|[a, b]| [a.expect("half labeled"), b.expect("half labeled")])
        .collect();
    Ok(Labeling::from_parts(node, edge, half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    #[test]
    fn assemble_merges_agreeing_outputs() {
        let g = gen::path(3);
        let outs: Vec<NodeLocalOutput<u32>> = g
            .nodes()
            .map(|v| NodeLocalOutput {
                node: v.0,
                halves: g
                    .ports(v)
                    .iter()
                    .map(|h| h.edge().0 * 10 + h.side().index() as u32)
                    .collect(),
                edges: g.ports(v).iter().map(|h| h.edge().0 * 100).collect(),
            })
            .collect();
        let lab = assemble(&g, &outs).expect("agreeing outputs");
        assert_eq!(*lab.node(NodeId(1)), 1);
        assert_eq!(*lab.edge(EdgeId(1)), 100);
    }

    #[test]
    fn disagreement_is_an_error() {
        let g = gen::path(2);
        let outs = vec![
            NodeLocalOutput { node: 0u32, halves: vec![0], edges: vec![1] },
            NodeLocalOutput { node: 0, halves: vec![0], edges: vec![2] },
        ];
        assert_eq!(assemble(&g, &outs), Err(AssembleError::EdgeDisagreement { edge: EdgeId(0) }));
    }

    #[test]
    fn degree_mismatch_is_an_error() {
        let g = gen::path(2);
        let outs = vec![
            NodeLocalOutput { node: 0u32, halves: vec![], edges: vec![] },
            NodeLocalOutput { node: 0, halves: vec![0], edges: vec![0] },
        ];
        let err = assemble(&g, &outs).unwrap_err();
        assert!(matches!(err, AssembleError::DegreeMismatch { node: NodeId(0), .. }));
        assert!(err.to_string().contains("degree"));
    }

    #[test]
    fn self_loop_requires_internal_agreement() {
        let mut g = lcl_graph::Graph::new();
        let v = g.add_node();
        g.add_edge(v, v);
        // The node proposes different labels on its two loop ports.
        let bad = vec![NodeLocalOutput { node: 0u32, halves: vec![1, 2], edges: vec![3, 4] }];
        assert!(assemble(&g, &bad).is_err());
        let good = vec![NodeLocalOutput { node: 0u32, halves: vec![1, 2], edges: vec![3, 3] }];
        let lab = assemble(&g, &good).expect("agreeing loop");
        assert_eq!(*lab.edge(EdgeId(0)), 3);
    }
}
