//! Node-edge-checkable LCL problems (ne-LCLs): formalism, checker, zoo.
//!
//! Section 2 of the paper restricts attention to LCLs whose correctness is
//! checkable "on nodes and edges": inputs and outputs are labels on
//! `V ∪ E ∪ B` (nodes, edges, and half-edges `B = {(v, e) | v ∈ e}`), and a
//! solution is correct iff
//!
//! * the **node constraint** `C_N` holds at every node — a predicate over
//!   the labels of the node, its incident edges, and its incident
//!   half-edges; and
//! * the **edge constraint** `C_E` holds at every edge — a predicate over
//!   the labels of `{u, v, e, (u, e), (v, e)}`.
//!
//! Neither constraint may depend on identifiers or port numbers.
//!
//! This crate provides:
//!
//! * [`Labeling`]: a total assignment of labels to `V ∪ E ∪ B`;
//! * [`NeLcl`]: the trait a problem implements (its constraints);
//! * [`check`]: the distributed-style verifier (it reports *which* node or
//!   edge rejects, as the model requires);
//! * [`assemble`]: the bridge from per-node local outputs (each node labels
//!   itself and its incident elements; endpoints must agree on edge labels)
//!   to a global [`Labeling`];
//! * [`problems`]: sinkless orientation (Figure 3 of the paper), vertex
//!   coloring, maximal matching, maximal independent set, and the trivial
//!   problem — the zoo populating the Figure-1 landscape experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod labeling;
mod problem;

pub mod problems;

pub use assemble::{assemble, AssembleError, NodeLocalOutput};
pub use labeling::Labeling;
pub use problem::{check, CheckResult, EdgeView, NeLcl, NodeView, Violation};
