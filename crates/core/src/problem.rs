//! The ne-LCL trait and its checker.

use crate::labeling::Labeling;
use lcl_graph::{EdgeId, Graph, HalfEdge, NodeId, Side};
use std::fmt;

/// Everything a **node constraint** `C_N` may look at for node `v`: the
/// input and output labels of `v`, and — per incident port, in port order —
/// of each incident edge and of the `v`-side half-edge.
///
/// Constraints must not depend on the port *numbers* (only on the multiset
/// of incident configurations); the slice order is provided for convenience
/// and determinism only.
#[derive(Clone, Copy, Debug)]
pub struct NodeView<'a, I, O> {
    /// The node's degree.
    pub degree: usize,
    /// Input label of the node.
    pub node_in: &'a I,
    /// Output label of the node.
    pub node_out: &'a O,
    /// Per port: input label of the incident edge.
    pub edges_in: &'a [&'a I],
    /// Per port: output label of the incident edge.
    pub edges_out: &'a [&'a O],
    /// Per port: input label of the half-edge on the node's side.
    pub halves_in: &'a [&'a I],
    /// Per port: output label of the half-edge on the node's side.
    pub halves_out: &'a [&'a O],
}

/// Everything an **edge constraint** `C_E` may look at for edge
/// `e = {u, v}`: labels of `u`, `v`, `e`, `(u, e)`, `(v, e)`. Index 0 is the
/// [`Side::A`] endpoint. Constraints must be symmetric in the two endpoints
/// (side order is an artifact of storage, not of the problem).
#[derive(Clone, Copy, Debug)]
pub struct EdgeView<'a, I, O> {
    /// True if the edge is a self-loop (both endpoints are the same node).
    pub self_loop: bool,
    /// Input labels of the two endpoint nodes.
    pub nodes_in: [&'a I; 2],
    /// Output labels of the two endpoint nodes.
    pub nodes_out: [&'a O; 2],
    /// Input label of the edge.
    pub edge_in: &'a I,
    /// Output label of the edge.
    pub edge_out: &'a O,
    /// Input labels of the two half-edges.
    pub halves_in: [&'a I; 2],
    /// Output labels of the two half-edges.
    pub halves_out: [&'a O; 2],
}

/// A node-edge-checkable LCL problem: label alphabets plus the two
/// constraint families.
///
/// Implementations return `Ok(())` when the local configuration is
/// acceptable and `Err(reason)` otherwise; the reason string is diagnostic
/// only (it plays no role in the semantics).
pub trait NeLcl {
    /// Input label alphabet `Σ_in` (a single product alphabet for
    /// `V ∪ E ∪ B`, as in the paper's w.l.o.g. encoding).
    type In: Clone + fmt::Debug;
    /// Output label alphabet `Σ_out`.
    type Out: Clone + fmt::Debug;

    /// The node constraint `C_N`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic message when the configuration at the node is
    /// not permitted.
    fn check_node(&self, view: &NodeView<'_, Self::In, Self::Out>) -> Result<(), String>;

    /// The edge constraint `C_E`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic message when the configuration at the edge is
    /// not permitted.
    fn check_edge(&self, view: &EdgeView<'_, Self::In, Self::Out>) -> Result<(), String>;
}

/// A rejected local constraint, attributed to the rejecting element — the
/// LCL definition requires that an incorrect solution is rejected *at* some
/// node or edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The node constraint failed at this node.
    Node(NodeId, String),
    /// The edge constraint failed at this edge.
    Edge(EdgeId, String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Node(v, why) => write!(f, "node constraint failed at {v}: {why}"),
            Violation::Edge(e, why) => write!(f, "edge constraint failed at {e}: {why}"),
        }
    }
}

/// Outcome of checking a labeling against an ne-LCL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckResult {
    /// All rejecting elements (empty iff the solution is correct).
    pub violations: Vec<Violation>,
}

impl CheckResult {
    /// True iff no constraint rejected.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable report if any constraint rejected. For tests.
    ///
    /// # Panics
    ///
    /// Panics if the check found violations.
    pub fn expect_ok(&self) {
        assert!(
            self.is_ok(),
            "expected a correct solution, got {} violation(s):\n{}",
            self.violations.len(),
            self.violations.iter().take(10).map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}

/// Checks `output` against problem `p` on graph `g` with the given `input`.
///
/// This is the (centralized simulation of the) constant-round distributed
/// verifier whose existence defines LCLs: every violation is local, and the
/// result lists each rejecting node/edge.
///
/// # Panics
///
/// Panics if the labelings do not fit the graph.
pub fn check<P: NeLcl>(
    p: &P,
    g: &Graph,
    input: &Labeling<P::In>,
    output: &Labeling<P::Out>,
) -> CheckResult {
    assert!(input.fits(g), "input labeling does not fit the graph");
    assert!(output.fits(g), "output labeling does not fit the graph");
    let mut violations = Vec::new();

    for v in g.nodes() {
        let ports = g.ports(v);
        let edges_in: Vec<&P::In> = ports.iter().map(|h| input.edge(h.edge())).collect();
        let edges_out: Vec<&P::Out> = ports.iter().map(|h| output.edge(h.edge())).collect();
        let halves_in: Vec<&P::In> = ports.iter().map(|&h| input.half(h)).collect();
        let halves_out: Vec<&P::Out> = ports.iter().map(|&h| output.half(h)).collect();
        let view = NodeView {
            degree: ports.len(),
            node_in: input.node(v),
            node_out: output.node(v),
            edges_in: &edges_in,
            edges_out: &edges_out,
            halves_in: &halves_in,
            halves_out: &halves_out,
        };
        if let Err(why) = p.check_node(&view) {
            violations.push(Violation::Node(v, why));
        }
    }

    for e in g.edges() {
        let [u, v] = g.endpoints(e);
        let ha = HalfEdge::new(e, Side::A);
        let hb = HalfEdge::new(e, Side::B);
        let view = EdgeView {
            self_loop: u == v,
            nodes_in: [input.node(u), input.node(v)],
            nodes_out: [output.node(u), output.node(v)],
            edge_in: input.edge(e),
            edge_out: output.edge(e),
            halves_in: [input.half(ha), input.half(hb)],
            halves_out: [output.half(ha), output.half(hb)],
        };
        if let Err(why) = p.check_edge(&view) {
            violations.push(Violation::Edge(e, why));
        }
    }

    CheckResult { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    /// A toy ne-LCL: every node must output its degree; edges are
    /// unconstrained.
    struct DegreeEcho;

    impl NeLcl for DegreeEcho {
        type In = ();
        type Out = usize;

        fn check_node(&self, view: &NodeView<'_, (), usize>) -> Result<(), String> {
            if *view.node_out == view.degree {
                Ok(())
            } else {
                Err(format!("expected {}, got {}", view.degree, view.node_out))
            }
        }

        fn check_edge(&self, _view: &EdgeView<'_, (), usize>) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn checker_accepts_correct_solution() {
        let g = gen::star(3);
        let input = Labeling::uniform(&g, ());
        let output = Labeling::build(&g, |v| g.degree(v), |_| 0, |_| 0);
        check(&DegreeEcho, &g, &input, &output).expect_ok();
    }

    #[test]
    fn checker_localizes_violation() {
        let g = gen::star(3);
        let input = Labeling::uniform(&g, ());
        let mut output = Labeling::build(&g, |v| g.degree(v), |_| 0, |_| 0);
        *output.node_mut(NodeId(0)) = 99;
        let res = check(&DegreeEcho, &g, &input, &output);
        assert_eq!(res.violations.len(), 1);
        assert!(matches!(res.violations[0], Violation::Node(NodeId(0), _)));
        assert!(!res.is_ok());
        assert!(res.violations[0].to_string().contains("node constraint"));
    }

    /// Edge constraint demo: endpoint outputs must differ (proper coloring
    /// skeleton), exercising the EdgeView path including self-loops.
    struct Differ;
    impl NeLcl for Differ {
        type In = ();
        type Out = u8;
        fn check_node(&self, _v: &NodeView<'_, (), u8>) -> Result<(), String> {
            Ok(())
        }
        fn check_edge(&self, view: &EdgeView<'_, (), u8>) -> Result<(), String> {
            if view.nodes_out[0] == view.nodes_out[1] {
                Err("endpoints share a label".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn self_loop_trips_differ() {
        let mut g = gen::path(2);
        g.add_edge(NodeId(0), NodeId(0));
        let input = Labeling::uniform(&g, ());
        let output = Labeling::build(&g, |v| v.0 as u8, |_| 0, |_| 0);
        let res = check(&Differ, &g, &input, &output);
        assert_eq!(res.violations.len(), 1);
        assert!(matches!(res.violations[0], Violation::Edge(EdgeId(1), _)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn mismatched_labeling_panics() {
        let g = gen::path(3);
        let h = gen::path(2);
        let input = Labeling::uniform(&h, ());
        let output = Labeling::uniform(&g, 0u8);
        let _ = check(&Differ, &g, &input, &output);
    }
}
