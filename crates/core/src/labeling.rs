//! Total label assignments over `V ∪ E ∪ B`.

use lcl_graph::{EdgeId, Graph, HalfEdge, NodeId};
use serde::{Deserialize, Serialize};

/// A total assignment of one label to every node, every edge, and every
/// half-edge of a graph.
///
/// The paper assumes w.l.o.g. that "each element of `V × E × B` is assigned
/// exactly one input label (and … exactly one output label)" — multiple
/// logical labels are encoded in one product label. `Labeling` mirrors that:
/// `L` is usually an enum or a small struct.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labeling<L> {
    node: Vec<L>,
    edge: Vec<L>,
    /// Per edge: the labels of the [`lcl_graph::Side::A`] and
    /// [`lcl_graph::Side::B`] half-edges.
    half: Vec<[L; 2]>,
}

impl<L: Clone> Labeling<L> {
    /// A labeling assigning `value` to every element.
    #[must_use]
    pub fn uniform(g: &Graph, value: L) -> Self {
        Labeling {
            node: vec![value.clone(); g.node_count()],
            edge: vec![value.clone(); g.edge_count()],
            half: vec![[value.clone(), value]; g.edge_count()],
        }
    }

    /// Builds a labeling element-by-element from three closures.
    #[must_use]
    pub fn build(
        g: &Graph,
        mut node: impl FnMut(NodeId) -> L,
        mut edge: impl FnMut(EdgeId) -> L,
        mut half: impl FnMut(HalfEdge) -> L,
    ) -> Self {
        Labeling {
            node: g.nodes().map(&mut node).collect(),
            edge: g.edges().map(&mut edge).collect(),
            half: g
                .edges()
                .map(|e| {
                    [
                        half(HalfEdge::new(e, lcl_graph::Side::A)),
                        half(HalfEdge::new(e, lcl_graph::Side::B)),
                    ]
                })
                .collect(),
        }
    }

    /// Maps every label through `f`, preserving structure.
    #[must_use]
    pub fn map<M>(&self, mut f: impl FnMut(&L) -> M) -> Labeling<M> {
        Labeling {
            node: self.node.iter().map(&mut f).collect(),
            edge: self.edge.iter().map(&mut f).collect(),
            half: self.half.iter().map(|[a, b]| [f(a), f(b)]).collect(),
        }
    }
}

impl<L> Labeling<L> {
    /// Creates a labeling from raw per-element vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree (`edge` and `half` must have
    /// equal length).
    #[must_use]
    pub fn from_parts(node: Vec<L>, edge: Vec<L>, half: Vec<[L; 2]>) -> Self {
        assert_eq!(edge.len(), half.len(), "edge and half-edge tables must align");
        Labeling { node, edge, half }
    }

    /// Label of a node.
    #[must_use]
    pub fn node(&self, v: NodeId) -> &L {
        &self.node[v.index()]
    }

    /// Label of an edge.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> &L {
        &self.edge[e.index()]
    }

    /// Label of a half-edge.
    #[must_use]
    pub fn half(&self, h: HalfEdge) -> &L {
        &self.half[h.edge().index()][h.side().index()]
    }

    /// Mutable label of a node.
    pub fn node_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.node[v.index()]
    }

    /// Mutable label of an edge.
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut L {
        &mut self.edge[e.index()]
    }

    /// Mutable label of a half-edge.
    pub fn half_mut(&mut self, h: HalfEdge) -> &mut L {
        &mut self.half[h.edge().index()][h.side().index()]
    }

    /// Number of node labels (= number of nodes of the host graph).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node.len()
    }

    /// Number of edge labels.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge.len()
    }

    /// True if the labeling matches the graph's element counts.
    #[must_use]
    pub fn fits(&self, g: &Graph) -> bool {
        self.node.len() == g.node_count() && self.edge.len() == g.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::{gen, Side};

    #[test]
    fn uniform_covers_everything() {
        let g = gen::cycle(4);
        let lab = Labeling::uniform(&g, 7u32);
        assert!(lab.fits(&g));
        for v in g.nodes() {
            assert_eq!(*lab.node(v), 7);
        }
        for e in g.edges() {
            assert_eq!(*lab.edge(e), 7);
            assert_eq!(*lab.half(HalfEdge::new(e, Side::A)), 7);
            assert_eq!(*lab.half(HalfEdge::new(e, Side::B)), 7);
        }
    }

    #[test]
    fn build_uses_element_identity() {
        let g = gen::path(3);
        let lab = Labeling::build(
            &g,
            |v| v.0 * 10,
            |e| e.0 * 100,
            |h| h.edge().0 * 100 + h.side().index() as u32,
        );
        assert_eq!(*lab.node(NodeId(2)), 20);
        assert_eq!(*lab.edge(EdgeId(1)), 100);
        assert_eq!(*lab.half(HalfEdge::new(EdgeId(1), Side::B)), 101);
    }

    #[test]
    fn mutation_is_per_element() {
        let g = gen::path(2);
        let mut lab = Labeling::uniform(&g, 0);
        *lab.node_mut(NodeId(1)) = 5;
        *lab.edge_mut(EdgeId(0)) = 6;
        *lab.half_mut(HalfEdge::new(EdgeId(0), Side::A)) = 7;
        assert_eq!(*lab.node(NodeId(0)), 0);
        assert_eq!(*lab.node(NodeId(1)), 5);
        assert_eq!(*lab.edge(EdgeId(0)), 6);
        assert_eq!(*lab.half(HalfEdge::new(EdgeId(0), Side::A)), 7);
        assert_eq!(*lab.half(HalfEdge::new(EdgeId(0), Side::B)), 0);
    }

    #[test]
    fn map_preserves_shape() {
        let g = gen::cycle(3);
        let lab = Labeling::uniform(&g, 2u32);
        let mapped = lab.map(|&x| x * 3);
        assert_eq!(*mapped.node(NodeId(0)), 6);
        assert_eq!(mapped.node_count(), 3);
        assert_eq!(mapped.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn from_parts_validates() {
        let _ = Labeling::from_parts(vec![1], vec![1, 2], vec![[1, 1]]);
    }
}
