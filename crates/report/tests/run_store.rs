//! RunStore contract tests: manifest/rows round-trip, atomic-write
//! crash-safety (a torn partial directory is never listed), and zero-delta
//! diffs between identical runs.

use lcl_report::{diff_rows, RowRecord, RunManifest, RunStore};
use std::fs;
use std::path::PathBuf;

/// A scratch store under the system temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("lcl-report-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        Scratch { root }
    }

    fn store(&self) -> RunStore {
        RunStore::new(&self.root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn sample_rows() -> Vec<RowRecord> {
    vec![
        RowRecord {
            experiment: "E1".into(),
            series: "sinkless-det".into(),
            n: 1024,
            seed: 1,
            measured: 13.0,
            extra: vec![("phase1".into(), 3.0), ("nan".into(), f64::NAN)],
        },
        RowRecord {
            experiment: "E1".into(),
            series: "sinkless-det".into(),
            n: 1024,
            seed: 1, // duplicate grid point: occurrence indexing must keep both
            measured: 14.5,
            extra: vec![],
        },
        RowRecord {
            experiment: "E1".into(),
            series: "trivial".into(),
            n: 2048,
            seed: u64::MAX,
            measured: 0.25,
            extra: vec![],
        },
    ]
}

#[test]
fn save_then_list_roundtrips_manifest_and_rows() {
    let scratch = Scratch::new("roundtrip");
    let store = scratch.store();
    let rows = sample_rows();
    let manifest = RunManifest::new("landscape", "run-a", &rows, 4, true, false);
    let dir = store.save(&manifest, &rows).expect("save succeeds");
    assert!(dir.ends_with("landscape/run-a"));
    assert!(dir.join("manifest.json").is_file());
    assert!(dir.join("rows.jsonl").is_file());

    let runs = store.list().expect("list succeeds");
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].manifest, manifest);
    let back = runs[0].rows().expect("rows re-ingest");
    assert_eq!(back.len(), rows.len());
    // Byte fidelity: NaN persists as null and re-ingests as NaN, so compare
    // re-serialized bytes instead of float equality.
    for (a, b) in rows.iter().zip(&back) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "row changed across persist/re-ingest"
        );
    }
}

#[test]
fn runs_are_immutable_and_ids_deduplicate() {
    let scratch = Scratch::new("immutable");
    let store = scratch.store();
    let rows = sample_rows();
    let manifest = RunManifest::new("landscape", "run-a", &rows, 1, false, true);
    store.save(&manifest, &rows).expect("first save succeeds");
    let err = store.save(&manifest, &rows).expect_err("second save must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);

    assert_eq!(store.unique_run_id("landscape", "run-a"), "run-a-2");
    assert_eq!(store.unique_run_id("landscape", "fresh"), "fresh");
    assert_eq!(store.unique_run_id("other-exp", "run-a"), "run-a");
}

#[test]
fn torn_partial_directories_are_never_listed() {
    let scratch = Scratch::new("torn");
    let store = scratch.store();
    let rows = sample_rows();
    let manifest = RunManifest::new("landscape", "good", &rows, 2, false, false);
    store.save(&manifest, &rows).expect("save succeeds");

    // A crashed writer leaves a temp dir behind: must be invisible.
    let tmp = scratch.root.join("landscape/.tmp-crashed-999");
    fs::create_dir_all(&tmp).unwrap();
    fs::write(tmp.join("rows.jsonl"), "{\"experiment\":\"E1\"").unwrap();

    // A run dir torn some other way (no manifest) is skipped, not an error.
    let torn = scratch.root.join("landscape/torn-run");
    fs::create_dir_all(&torn).unwrap();
    fs::write(torn.join("rows.jsonl"), "").unwrap();

    // A manifest that fails to parse is equally invisible.
    let bad = scratch.root.join("landscape/bad-manifest");
    fs::create_dir_all(&bad).unwrap();
    fs::write(bad.join("manifest.json"), "{not json").unwrap();

    let runs = store.list().expect("list succeeds");
    assert_eq!(runs.len(), 1, "only the committed run is visible");
    assert_eq!(runs[0].manifest.run_id, "good");
    assert!(store.find("torn-run").unwrap().is_none());
    assert!(store.find("good").unwrap().is_some());
}

#[test]
fn diff_of_identical_runs_is_empty() {
    let scratch = Scratch::new("diff");
    let store = scratch.store();
    let rows = sample_rows();
    for id in ["par", "seq"] {
        let manifest = RunManifest::new("landscape", id, &rows, 4, true, id == "seq");
        store.save(&manifest, &rows).expect("save succeeds");
    }
    let a = store.find("par").unwrap().expect("par exists").rows().unwrap();
    let b = store.find("seq").unwrap().expect("seq exists").rows().unwrap();
    assert_eq!(diff_rows(&a, &b, 0.0), vec![], "identical runs must diff empty");

    // And a perturbed copy does not.
    let mut c = b.clone();
    c[0].measured += 0.5;
    assert_eq!(diff_rows(&a, &c, 0.0).len(), 1);
    assert_eq!(diff_rows(&a, &c, 1.0).len(), 0, "tolerance absorbs the perturbation");
}

#[test]
fn missing_root_lists_empty() {
    let scratch = Scratch::new("empty");
    let store = scratch.store();
    assert!(store.list().expect("missing root is an empty store").is_empty());
    assert!(store.find("anything").unwrap().is_none());
}

#[test]
fn trend_reports_mean_and_percentile_bands_across_seeds() {
    // Three persisted runs of one experiment; each run measures one series
    // at n = 64 across three seeds. The bands must be computed per run:
    // nearest-rank p50 is the middle seed value, p95 the maximum.
    let scratch = Scratch::new("trend");
    let store = scratch.store();
    let grids: [(&str, [f64; 3]); 3] =
        [("run-1", [10.0, 12.0, 14.0]), ("run-2", [10.0, 10.0, 40.0]), ("run-3", [9.0, 9.0, 9.0])];
    for (id, measures) in grids {
        let rows: Vec<RowRecord> = measures
            .iter()
            .enumerate()
            .map(|(i, &m)| RowRecord {
                experiment: "E9".into(),
                series: "mis-rand".into(),
                n: 64,
                seed: i as u64 + 1,
                measured: m,
                extra: vec![],
            })
            .collect();
        let manifest = RunManifest::new("trendexp", id, &rows, 1, false, false);
        store.save(&manifest, &rows).expect("save succeeds");
    }

    let runs = store.list().expect("list succeeds");
    assert_eq!(runs.len(), 3);
    let points = lcl_report::trend(&runs, "mis-rand").expect("trend re-ingests");
    assert_eq!(points.len(), 3, "one point per run at n = 64");
    let by_id = |id: &str| points.iter().find(|p| p.run_id == id).expect("point exists");

    let p1 = by_id("run-1");
    assert_eq!((p1.mean_measured, p1.p50_measured, p1.p95_measured), (12.0, 12.0, 14.0));
    assert_eq!(p1.samples, 3);

    // A tail outlier moves mean and p95 but not the median.
    let p2 = by_id("run-2");
    assert_eq!((p2.mean_measured, p2.p50_measured, p2.p95_measured), (20.0, 10.0, 40.0));

    // Constant seeds: all statistics coincide.
    let p3 = by_id("run-3");
    assert_eq!((p3.mean_measured, p3.p50_measured, p3.p95_measured), (9.0, 9.0, 9.0));

    // Unknown series yields no points rather than an error.
    assert!(lcl_report::trend(&runs, "absent").expect("ok").is_empty());
}

#[test]
fn trend_pads_over_pre_scheduler_manifests() {
    // A manifest written before the scheduler PR: no `meta` key at all
    // (and hence no timing or prediction pairs). Written raw to disk so
    // the whole list → trend → prediction-error pipeline is exercised on
    // exactly the bytes an old store holds — it must pad, not error.
    let scratch = Scratch::new("legacy");
    let rows = vec![RowRecord {
        experiment: "SCN".into(),
        series: "torus/luby".into(),
        n: 64,
        seed: 1,
        measured: 7.0,
        extra: vec![],
    }];
    let dir = scratch.root.join("scenario-old/legacy-run");
    fs::create_dir_all(&dir).unwrap();
    let manifest = RunManifest::new("scenario-old", "legacy-run", &rows, 1, false, true);
    let json = serde_json::to_string(&manifest).unwrap().replace(",\"meta\":[]", "");
    assert!(!json.contains("\"meta\""), "fixture must predate the meta field");
    fs::write(dir.join("manifest.json"), json).unwrap();
    fs::write(dir.join("rows.jsonl"), format!("{}\n", serde_json::to_string(&rows[0]).unwrap()))
        .unwrap();

    let store = scratch.store();
    let runs = store.list().expect("legacy manifest parses");
    assert_eq!(runs.len(), 1);
    assert!(runs[0].manifest.meta.is_empty());
    let points = lcl_report::trend(&runs, "torus/luby").expect("trend over legacy run");
    assert_eq!(points.len(), 1);
    assert_eq!(points[0].mean_measured, 7.0);
    // The padding contract `results trend`/`show` rely on: no pairs → None.
    assert_eq!(lcl_report::prediction_error(&runs[0].manifest.meta), None);
    // And the timing history reader treats the run as empty history.
    assert!(lcl_report::cost_history(&store).expect("ok").is_empty());
}
