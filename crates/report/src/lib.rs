//! Persistent results subsystem for the experiment harness.
//!
//! Every experiment run leaves an immutable, re-ingestable record on disk,
//! keyed by provenance — seed set, git revision, grid configuration, pool
//! width — in the spirit of accountable append-only logs: any number
//! reported from the paper reproduction can be traced back to the run that
//! produced it and diffed against later runs.
//!
//! Layout (one directory per run, written atomically via temp-dir +
//! rename, so a torn run is never visible):
//!
//! ```text
//! results/<experiment>/<run-id>/
//!   manifest.json   — [`RunManifest`]: who/when/how
//!   rows.jsonl      — one [`RowRecord`] per line (streaming serializer)
//! ```
//!
//! [`RunStore`] owns the directory tree; [`diff_rows`] and [`trend`]
//! implement the longitudinal workflows surfaced by the `results` CLI
//! (`list` / `show` / `diff` / `trend`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_gate;
mod diff;
mod history;
mod manifest;
mod store;

pub use bench_gate::BenchGate;
pub use diff::{diff_rows, trend, Delta, TrendPoint};
pub use history::{bench_history, cost_history, prediction_error, CostSample, PredictionError};
pub use manifest::{git_rev, utc_timestamp, RowRecord, RunManifest};
pub use store::{RunStore, StoredRun};
