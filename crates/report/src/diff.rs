//! Longitudinal analysis over persisted rows: per-series deltas between
//! two runs, and measured-vs-n trends across runs.

use crate::manifest::RowRecord;
use crate::store::StoredRun;
use std::collections::BTreeMap;
use std::io;

/// One difference between two row sets.
#[derive(Clone, Debug, PartialEq)]
pub enum Delta {
    /// A row key present only in the first run.
    OnlyInA(RowKey),
    /// A row key present only in the second run.
    OnlyInB(RowKey),
    /// A numeric field differing beyond tolerance.
    Field {
        /// The row both runs share.
        key: RowKey,
        /// `"measured"` or an `extra` field name.
        field: String,
        /// The first run's value.
        a: f64,
        /// The second run's value.
        b: f64,
    },
}

/// Identity of a row within a run: grid coordinates plus the occurrence
/// index, since binaries may emit several rows per `(series, n, seed)`
/// point (e.g. one per sweep cap) in a deterministic order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RowKey {
    /// Experiment id.
    pub experiment: String,
    /// Series label.
    pub series: String,
    /// Instance size.
    pub n: usize,
    /// Seed.
    pub seed: u64,
    /// 0-based occurrence among rows sharing the coordinates above.
    pub occurrence: usize,
}

impl std::fmt::Display for RowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} n={} seed={}", self.experiment, self.series, self.n, self.seed)?;
        if self.occurrence > 0 {
            write!(f, " #{}", self.occurrence)?;
        }
        Ok(())
    }
}

fn keyed(rows: &[RowRecord]) -> BTreeMap<RowKey, &RowRecord> {
    let mut seen: BTreeMap<(&str, &str, usize, u64), usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for r in rows {
        let occ = seen.entry((r.experiment.as_str(), r.series.as_str(), r.n, r.seed)).or_insert(0);
        out.insert(
            RowKey {
                experiment: r.experiment.clone(),
                series: r.series.clone(),
                n: r.n,
                seed: r.seed,
                occurrence: *occ,
            },
            r,
        );
        *occ += 1;
    }
    out
}

/// Two floats agree when equal (covers ±inf, where `a - b` would be NaN),
/// within `tol`, or both NaN (NaN persists as JSON `null` and re-ingests
/// as NaN, so NaN-vs-NaN is "unchanged").
fn agree(a: f64, b: f64, tol: f64) -> bool {
    a == b || (a - b).abs() <= tol || (a.is_nan() && b.is_nan())
}

/// Compares two row sets field by field. Empty result ⇔ the runs agree on
/// every row and every numeric field within `tol` (use `tol = 0.0` for
/// exactness — parallel and `--seq` runs of the same grid must produce an
/// empty diff).
#[must_use]
pub fn diff_rows(a: &[RowRecord], b: &[RowRecord], tol: f64) -> Vec<Delta> {
    let ka = keyed(a);
    let kb = keyed(b);
    let mut deltas = Vec::new();
    for (key, ra) in &ka {
        let Some(rb) = kb.get(key) else {
            deltas.push(Delta::OnlyInA(key.clone()));
            continue;
        };
        if !agree(ra.measured, rb.measured, tol) {
            deltas.push(Delta::Field {
                key: key.clone(),
                field: "measured".into(),
                a: ra.measured,
                b: rb.measured,
            });
        }
        // Extras compare positionally on the shared prefix; missing or
        // renamed entries surface as field deltas against NaN.
        let len = ra.extra.len().max(rb.extra.len());
        for i in 0..len {
            match (ra.extra.get(i), rb.extra.get(i)) {
                (Some((name_a, va)), Some((name_b, vb))) if name_a == name_b => {
                    if !agree(*va, *vb, tol) {
                        deltas.push(Delta::Field {
                            key: key.clone(),
                            field: name_a.clone(),
                            a: *va,
                            b: *vb,
                        });
                    }
                }
                (xa, xb) => {
                    let name = xa.or(xb).map_or_else(String::new, |(name, _)| name.clone());
                    deltas.push(Delta::Field {
                        key: key.clone(),
                        field: name,
                        a: xa.map_or(f64::NAN, |(_, v)| *v),
                        b: xb.map_or(f64::NAN, |(_, v)| *v),
                    });
                }
            }
        }
    }
    for key in kb.keys() {
        if !ka.contains_key(key) {
            deltas.push(Delta::OnlyInB(key.clone()));
        }
    }
    deltas
}

/// One trend sample: a run's measured-value statistics for a series at
/// size `n`, aggregated across the run's seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendPoint {
    /// Run id the sample comes from.
    pub run_id: String,
    /// The run's UTC timestamp.
    pub timestamp_utc: String,
    /// Instance size.
    pub n: usize,
    /// Mean measured value over the run's seeds at this `n`.
    pub mean_measured: f64,
    /// Median (nearest-rank p50) over the run's seeds at this `n`.
    pub p50_measured: f64,
    /// Nearest-rank 95th percentile over the run's seeds at this `n` —
    /// makes tail regressions visible where the mean stays flat.
    pub p95_measured: f64,
    /// Number of rows aggregated.
    pub samples: usize,
}

/// Nearest-rank percentile of `sorted` (ascending, non-empty):
/// `sorted[⌈q·len⌉ - 1]`. For 3 seeds, `q = 0.5` is the middle value and
/// `q = 0.95` the maximum — the conventional small-sample reading.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Measured-vs-n for `series` across every given run (callers pass the
/// runs of one experiment, already in store order — i.e. by timestamp).
/// Each point carries mean and p50/p95 bands across the run's seeds.
///
/// # Errors
///
/// Propagates row re-ingestion errors.
pub fn trend(runs: &[StoredRun], series: &str) -> io::Result<Vec<TrendPoint>> {
    let mut points = Vec::new();
    for run in runs {
        let rows = run.rows()?;
        let mut by_n: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for r in rows.iter().filter(|r| r.series == series) {
            by_n.entry(r.n).or_default().push(r.measured);
        }
        for (n, mut values) in by_n {
            values.sort_by(f64::total_cmp);
            points.push(TrendPoint {
                run_id: run.manifest.run_id.clone(),
                timestamp_utc: run.manifest.timestamp_utc.clone(),
                n,
                mean_measured: values.iter().sum::<f64>() / values.len() as f64,
                p50_measured: percentile(&values, 0.5),
                p95_measured: percentile(&values, 0.95),
                samples: values.len(),
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(series: &str, n: usize, seed: u64, measured: f64, extra: &[(&str, f64)]) -> RowRecord {
        RowRecord {
            experiment: "E".into(),
            series: series.into(),
            n,
            seed,
            measured,
            extra: extra.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        }
    }

    #[test]
    fn identical_rows_diff_empty() {
        let rows = vec![
            row("a", 8, 1, 2.0, &[("x", 1.0)]),
            row("a", 8, 1, 3.0, &[]), // second occurrence of the same key
            row("b", 16, 2, f64::NAN, &[]),
            row("c", 16, 2, f64::INFINITY, &[("neg", f64::NEG_INFINITY)]),
        ];
        assert_eq!(diff_rows(&rows, &rows.clone(), 0.0), vec![]);
    }

    #[test]
    fn changed_measured_and_extra_are_reported() {
        let a = vec![row("a", 8, 1, 2.0, &[("x", 1.0)])];
        let b = vec![row("a", 8, 1, 2.5, &[("x", 1.25)])];
        let deltas = diff_rows(&a, &b, 0.1);
        assert_eq!(deltas.len(), 2);
        assert!(matches!(
            &deltas[0],
            Delta::Field { field, a, b, .. } if field == "measured" && *a == 2.0 && *b == 2.5
        ));
        assert!(matches!(&deltas[1], Delta::Field { field, .. } if field == "x"));
        // Within tolerance: no deltas.
        assert_eq!(diff_rows(&a, &b, 0.6), vec![]);
    }

    #[test]
    fn missing_rows_are_reported_on_both_sides() {
        let a = vec![row("a", 8, 1, 2.0, &[]), row("a", 16, 1, 3.0, &[])];
        let b = vec![row("a", 8, 1, 2.0, &[]), row("c", 8, 1, 1.0, &[])];
        let deltas = diff_rows(&a, &b, 0.0);
        assert_eq!(deltas.len(), 2);
        assert!(matches!(&deltas[0], Delta::OnlyInA(k) if k.n == 16));
        assert!(matches!(&deltas[1], Delta::OnlyInB(k) if k.series == "c"));
    }

    #[test]
    fn extra_shape_mismatch_is_a_delta() {
        let a = vec![row("a", 8, 1, 2.0, &[("x", 1.0), ("y", 2.0)])];
        let b = vec![row("a", 8, 1, 2.0, &[("x", 1.0)])];
        let deltas = diff_rows(&a, &b, 0.0);
        assert_eq!(deltas.len(), 1);
        assert!(matches!(&deltas[0], Delta::Field { field, .. } if field == "y"));
    }
}
