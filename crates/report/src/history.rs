//! Cost-history readback: the training data for the grid scheduler.
//!
//! The scheduler's cost model (`lcl_bench::sched`) learns `c · n^a` curves
//! from what previous runs actually took. Two sources already live on
//! disk, both read here:
//!
//! * **Persisted scenario runs** — every run's manifest carries one
//!   `cell_ms:<family>:<n>:<seed>` meta pair per measured cell (and
//!   scheduled runs additionally `predicted_ms:`/`actual_ms:` pairs, the
//!   self-improvement loop's error record). [`cost_history`] turns them
//!   into [`CostSample`]s keyed by the run's per-family algorithm set.
//! * **`BENCH_*.json` perf-gate records** — gates that record a
//!   `candidate_ms` wall time become samples under a `bench:<name>`
//!   algorithm key via [`bench_history`].
//!
//! [`prediction_error`] is the reporting half: it pairs a manifest's
//! `predicted_ms:`/`actual_ms:` entries into an aggregate relative error,
//! which `results show`/`results trend` surface (and which quantifies how
//! much the model still has to learn).

use crate::bench_gate::BenchGate;
use crate::store::RunStore;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One observed cell cost: a `(family, algorithm-set, n)` class and the
/// wall-clock milliseconds it took.
#[derive(Clone, Debug, PartialEq)]
pub struct CostSample {
    /// Family slug the cell was generated from (e.g. `torus`).
    pub family: String,
    /// Algorithm-set key: scenario algo slugs joined with `+` in spec
    /// order (e.g. `luby+linial`), or `bench:<name>` for perf-gate
    /// samples.
    pub algos: String,
    /// Grid size of the cell.
    pub n: usize,
    /// Measured wall-clock milliseconds.
    pub ms: f64,
}

/// Reads every persisted run's per-cell timing meta into cost samples.
///
/// A cell's sample prefers `actual_ms:` (written by scheduled runs, so
/// the model consumes its own errors) over `cell_ms:` (written by every
/// run). The algorithm-set key is derived from the run's series labels
/// (`family/algo`), so a sample trained on `luby+linial` never predicts
/// for a grid running a different algorithm set.
///
/// # Errors
///
/// Propagates store-listing I/O errors; unreadable rows or malformed
/// meta pairs are skipped, not fatal — history is advisory.
pub fn cost_history(store: &RunStore) -> io::Result<Vec<CostSample>> {
    let mut out = Vec::new();
    for run in store.list()? {
        let m = &run.manifest;
        let mut algos_by_family: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for s in &m.series {
            if let Some((family, algo)) = s.split_once('/') {
                let set = algos_by_family.entry(family).or_default();
                if !set.contains(&algo) {
                    set.push(algo);
                }
            }
        }
        if algos_by_family.is_empty() {
            continue;
        }
        // Cell → (ms, came-from-actual_ms): actual_ms wins over cell_ms.
        let mut timed: BTreeMap<(String, usize, u64), (f64, bool)> = BTreeMap::new();
        for (k, v) in &m.meta {
            let (prefer, rest) = if let Some(r) = k.strip_prefix("actual_ms:") {
                (true, r)
            } else if let Some(r) = k.strip_prefix("cell_ms:") {
                (false, r)
            } else {
                continue;
            };
            let Some(cell) = parse_cell_suffix(rest) else { continue };
            let Ok(ms) = v.parse::<f64>() else { continue };
            let entry = timed.entry(cell).or_insert((ms, prefer));
            if prefer && !entry.1 {
                *entry = (ms, true);
            }
        }
        for ((family, n, _seed), (ms, _)) in timed {
            let Some(algos) = algos_by_family.get(family.as_str()) else { continue };
            out.push(CostSample { algos: algos.join("+"), family, n, ms });
        }
    }
    Ok(out)
}

/// Parses the `<family>:<n>:<seed>` suffix of a timing meta key. Family
/// slugs never contain `:`, so splitting from the right is unambiguous.
fn parse_cell_suffix(rest: &str) -> Option<(String, usize, u64)> {
    let (head, seed) = rest.rsplit_once(':')?;
    let (family, n) = head.rsplit_once(':')?;
    Some((family.to_string(), n.parse().ok()?, seed.parse().ok()?))
}

/// Reads every `BENCH_*.json` perf-gate record under `dir` that carries a
/// `candidate_ms` wall time into cost samples, keyed `bench:<name>` so
/// they train their own curves without polluting scenario classes.
/// Unreadable or legacy (no wall time) records are skipped — history is
/// advisory, and a missing directory is simply empty history.
#[must_use]
pub fn bench_history(dir: &Path) -> Vec<CostSample> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return out };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
        let Ok(gate) = serde_json::from_str::<BenchGate>(text.trim()) else { continue };
        if gate.candidate_ms > 0.0 {
            out.push(CostSample {
                family: gate.family,
                algos: format!("bench:{}", gate.bench),
                n: gate.n,
                ms: gate.candidate_ms,
            });
        }
    }
    // Directory iteration order is platform-dependent; sort for stable
    // downstream fits.
    out.sort_by(|a, b| {
        (&a.family, &a.algos, a.n).cmp(&(&b.family, &b.algos, b.n)).then(a.ms.total_cmp(&b.ms))
    });
    out
}

/// Aggregate predicted-vs-actual error of one scheduled run, from its
/// manifest's `predicted_ms:`/`actual_ms:` meta pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictionError {
    /// Number of cells with both a prediction and a measurement.
    pub cells: usize,
    /// Mean of `|predicted - actual| / actual` across those cells.
    pub mean_abs_rel: f64,
    /// Maximum of the same ratio — the worst-predicted cell.
    pub max_abs_rel: f64,
}

/// Pairs a manifest's `predicted_ms:<cell>` and `actual_ms:<cell>` meta
/// entries into an aggregate relative error. `None` when the run carries
/// no complete pair (unscheduled runs, pre-scheduler manifests) — callers
/// pad their output instead of erroring.
#[must_use]
pub fn prediction_error(meta: &[(String, String)]) -> Option<PredictionError> {
    let mut predicted: BTreeMap<&str, f64> = BTreeMap::new();
    for (k, v) in meta {
        if let Some(cell) = k.strip_prefix("predicted_ms:") {
            if let Ok(ms) = v.parse::<f64>() {
                predicted.insert(cell, ms);
            }
        }
    }
    let mut errs = Vec::new();
    for (k, v) in meta {
        if let Some(cell) = k.strip_prefix("actual_ms:") {
            if let (Some(&p), Ok(a)) = (predicted.get(cell), v.parse::<f64>()) {
                if a > 0.0 {
                    errs.push(((p - a) / a).abs());
                }
            }
        }
    }
    if errs.is_empty() {
        return None;
    }
    Some(PredictionError {
        cells: errs.len(),
        mean_abs_rel: errs.iter().sum::<f64>() / errs.len() as f64,
        max_abs_rel: errs.iter().fold(0.0_f64, |m, &e| m.max(e)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{RowRecord, RunManifest};

    fn scratch(name: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("lcl-history-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn scn_row(family: &str, algo: &str, n: usize, seed: u64) -> RowRecord {
        RowRecord {
            experiment: "SCN".into(),
            series: format!("{family}/{algo}"),
            n,
            seed,
            measured: 1.0,
            extra: vec![],
        }
    }

    #[test]
    fn cost_history_reads_timing_meta_and_prefers_actual_ms() {
        let root = scratch("cost");
        let store = RunStore::new(&root);
        let rows = vec![
            scn_row("torus", "luby", 16, 1),
            scn_row("torus", "linial", 16, 1),
            scn_row("torus", "luby", 64, 1),
            scn_row("torus", "linial", 64, 1),
        ];
        let manifest = RunManifest::new("scenario-t", "r1", &rows, 1, false, true).with_meta(vec![
            ("scenario".into(), "t".into()),
            ("cell_ms:torus:16:1".into(), "2.500".into()),
            ("cell_ms:torus:64:1".into(), "9.000".into()),
            // A scheduled run also records actual_ms; it must win.
            ("actual_ms:torus:64:1".into(), "8.000".into()),
            ("cell_ms:not-a-cell".into(), "1.0".into()),
            ("cell_ms:torus:16:bad".into(), "1.0".into()),
        ]);
        store.save(&manifest, &rows).unwrap();
        let mut samples = cost_history(&store).unwrap();
        samples.sort_by_key(|s| s.n);
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[0],
            CostSample { family: "torus".into(), algos: "luby+linial".into(), n: 16, ms: 2.5 }
        );
        assert_eq!(samples[1].ms, 8.0, "actual_ms must shadow cell_ms");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cost_history_skips_runs_without_timing_or_series() {
        let root = scratch("plain");
        let store = RunStore::new(&root);
        // A non-scenario run: series without the family/algo shape.
        let rows = vec![RowRecord {
            experiment: "E1".into(),
            series: "sinkless-det".into(),
            n: 64,
            seed: 1,
            measured: 3.0,
            extra: vec![],
        }];
        let manifest = RunManifest::new("landscape", "r1", &rows, 1, false, true)
            .with_meta(vec![("cell_ms:sinkless-det:64:1".into(), "4.0".into())]);
        store.save(&manifest, &rows).unwrap();
        assert!(cost_history(&store).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bench_history_reads_gates_with_wall_times() {
        let dir = scratch("bench");
        std::fs::create_dir_all(&dir).unwrap();
        BenchGate::new("grid_sched", 1.5, 1.7, 1 << 18, "skewed")
            .with_candidate_ms(260.0)
            .write_to(&dir)
            .unwrap();
        // A legacy gate without a wall time contributes nothing.
        BenchGate::new("huge_graph", 2.0, 3.2, 1 << 20, "luby:256x").write_to(&dir).unwrap();
        std::fs::write(dir.join("BENCH_broken.json"), "not json").unwrap();
        let samples = bench_history(&dir);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].algos, "bench:grid_sched");
        assert_eq!((samples[0].n, samples[0].ms), (1 << 18, 260.0));
        assert!(bench_history(&dir.join("missing")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prediction_error_pairs_meta_and_pads_when_absent() {
        let meta = vec![
            ("predicted_ms:torus:16:1".to_string(), "10.0".to_string()),
            ("actual_ms:torus:16:1".into(), "8.0".into()),
            ("predicted_ms:torus:64:1".into(), "90.0".into()),
            ("actual_ms:torus:64:1".into(), "100.0".into()),
            // Unpaired prediction and zero actual are both ignored.
            ("predicted_ms:torus:25:1".into(), "5.0".into()),
            ("predicted_ms:torus:36:1".into(), "5.0".into()),
            ("actual_ms:torus:36:1".into(), "0".into()),
        ];
        let pe = prediction_error(&meta).unwrap();
        assert_eq!(pe.cells, 2);
        assert!((pe.mean_abs_rel - 0.175).abs() < 1e-12, "{}", pe.mean_abs_rel);
        assert!((pe.max_abs_rel - 0.25).abs() < 1e-12);
        assert_eq!(prediction_error(&[]), None);
        assert_eq!(prediction_error(&[("spec_hash".into(), "00ff".into())]), None);
    }
}
