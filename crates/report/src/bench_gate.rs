//! Machine-readable perf-gate records.
//!
//! Every asserted acceptance bench (`rounds`, `ball_cache`, `serialize`)
//! emits one `BENCH_<name>.json` next to its pass/fail assert, so a CI run
//! leaves a provenance-stamped perf trajectory that can be collected as an
//! artifact and compared across commits — the export half of the run
//! store's "publish `BENCH_*.json` trajectories" open item.

use crate::manifest::{git_rev, utc_timestamp};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// One perf-gate measurement: the asserted floor, what was actually
/// measured, and the workload it was measured on, stamped with provenance.
///
/// `Deserialize` is hand-written (not derived) so records written before
/// the `candidate_ms` field existed still parse — it defaults to `0.0`
/// ("no wall time recorded") when the key is absent.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct BenchGate {
    /// Gate name (`rounds`, `ball_cache`, `serialize`); also names the
    /// output file `BENCH_<bench>.json`.
    pub bench: String,
    /// The asserted minimum speedup ratio (the gate fails below this).
    pub gate_ratio: f64,
    /// The speedup actually measured (baseline time / candidate time).
    pub measured_ratio: f64,
    /// Instance size the gate workload ran at.
    pub n: usize,
    /// Workload family label (e.g. "cycle+8reg-tree").
    pub family: String,
    /// Wall-clock milliseconds of the candidate (fast) side of the gate,
    /// `0.0` when the gate does not record one — gates that do feed the
    /// grid scheduler's cost model as `bench:<name>` samples
    /// (`lcl_report::bench_history`).
    pub candidate_ms: f64,
    /// Git revision of the tree the bench ran on.
    pub git_rev: String,
    /// UTC wall-clock time of the measurement.
    pub timestamp_utc: String,
}

impl Deserialize for BenchGate {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(BenchGate {
            bench: Deserialize::from_value(v.field("bench")?)?,
            gate_ratio: Deserialize::from_value(v.field("gate_ratio")?)?,
            measured_ratio: Deserialize::from_value(v.field("measured_ratio")?)?,
            n: Deserialize::from_value(v.field("n")?)?,
            family: Deserialize::from_value(v.field("family")?)?,
            // Absent in pre-candidate_ms records: default to "none".
            candidate_ms: match v.field("candidate_ms") {
                Ok(ms) => Deserialize::from_value(ms)?,
                Err(_) => 0.0,
            },
            git_rev: Deserialize::from_value(v.field("git_rev")?)?,
            timestamp_utc: Deserialize::from_value(v.field("timestamp_utc")?)?,
        })
    }
}

impl BenchGate {
    /// A gate record for the current tree, stamped with `git_rev()` and
    /// the current UTC time.
    #[must_use]
    pub fn new(bench: &str, gate_ratio: f64, measured_ratio: f64, n: usize, family: &str) -> Self {
        BenchGate {
            bench: bench.to_string(),
            gate_ratio,
            measured_ratio,
            n,
            family: family.to_string(),
            candidate_ms: 0.0,
            git_rev: git_rev(),
            timestamp_utc: utc_timestamp(),
        }
    }

    /// Records the candidate side's wall time (builder style), making
    /// this gate a training sample for the grid scheduler's cost model.
    #[must_use]
    pub fn with_candidate_ms(mut self, ms: f64) -> Self {
        self.candidate_ms = ms;
        self
    }

    /// The export directory: `$LCL_BENCH_JSON_DIR` if set, else the
    /// current directory. CI points this at the workspace root so gates
    /// running from different crates land in one place.
    #[must_use]
    pub fn export_dir() -> PathBuf {
        std::env::var_os("LCL_BENCH_JSON_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from)
    }

    /// Writes `BENCH_<bench>.json` (single JSON object + newline) into
    /// [`BenchGate::export_dir`], overwriting any previous record — each
    /// CI run publishes its own trajectory point. Returns the path
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write I/O errors.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(&Self::export_dir())
    }

    /// [`BenchGate::write`] into an explicit directory (testable entry
    /// point).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write I/O errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        let mut text = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_roundtrips_and_writes_named_file() {
        let dir = std::env::temp_dir().join(format!("lcl-bench-gate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let gate = BenchGate::new("unit", 2.0, 5.8, 4096, "cycle");
        let path = gate.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back: BenchGate = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(back, gate);
        assert!(back.measured_ratio >= back.gate_ratio);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_record_without_candidate_ms_still_parses() {
        let gate = BenchGate::new("unit", 2.0, 5.8, 4096, "cycle");
        let json = serde_json::to_string(&gate).unwrap();
        let legacy = json.replace(",\"candidate_ms\":0.0", "");
        assert_ne!(legacy, json, "candidate_ms key must have been stripped");
        let back: BenchGate = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, gate);
        assert_eq!(back.candidate_ms, 0.0);
        // The builder round-trips a recorded wall time.
        let timed = gate.with_candidate_ms(12.5);
        let back: BenchGate =
            serde_json::from_str(&serde_json::to_string(&timed).unwrap()).unwrap();
        assert_eq!(back.candidate_ms, 12.5);
    }
}
