//! The on-disk run store: atomic persistence and re-ingestion.

use crate::manifest::{RowRecord, RunManifest};
use std::fs;
use std::io::{self, BufRead, BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Name of the rows file inside a run directory.
pub const ROWS_FILE: &str = "rows.jsonl";

/// A run directory tree: `root/<experiment>/<run-id>/{manifest.json,rows.jsonl}`.
///
/// Writes are atomic at run granularity: everything lands in a hidden
/// `.tmp-` sibling first and is `rename`d into place only once complete,
/// so readers never observe a torn run — a crash leaves at most an
/// ignorable temp directory behind, which [`RunStore::list`] skips.
#[derive(Clone, Debug)]
pub struct RunStore {
    root: PathBuf,
}

/// One persisted run as found on disk: its manifest plus the directory it
/// lives in (rows load lazily via [`StoredRun::rows`]).
#[derive(Clone, Debug)]
pub struct StoredRun {
    /// The run's provenance record.
    pub manifest: RunManifest,
    /// The run directory (`root/<experiment>/<run-id>`).
    pub dir: PathBuf,
}

impl StoredRun {
    /// Re-ingests the run's rows from `rows.jsonl`.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` if a line fails to parse.
    pub fn rows(&self) -> io::Result<Vec<RowRecord>> {
        let file = fs::File::open(self.dir.join(ROWS_FILE))?;
        let reader = io::BufReader::new(file);
        let mut rows = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let row: RowRecord = serde_json::from_str(&line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", self.dir.join(ROWS_FILE).display(), i + 1),
                )
            })?;
            rows.push(row);
        }
        Ok(rows)
    }
}

impl RunStore {
    /// A store rooted at `root` (conventionally `results/`).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RunStore { root: root.into() }
    }

    /// The conventional store location: `results/` under the working dir.
    #[must_use]
    pub fn default_root() -> PathBuf {
        PathBuf::from("results")
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A run id not yet taken under `experiment`: `base`, else `base-2`,
    /// `base-3`, … (re-runs with an explicit `--run-id` fail in
    /// [`RunStore::save`] instead, preserving immutability).
    #[must_use]
    pub fn unique_run_id(&self, experiment: &str, base: &str) -> String {
        let dir = self.root.join(experiment);
        if !dir.join(base).exists() {
            return base.to_string();
        }
        let mut k = 2usize;
        loop {
            let candidate = format!("{base}-{k}");
            if !dir.join(&candidate).exists() {
                return candidate;
            }
            k += 1;
        }
    }

    /// Persists a run atomically and returns its final directory.
    ///
    /// The manifest and rows are first streamed into
    /// `root/<experiment>/.tmp-<run-id>-<pid>/`, fsync'd closed, and only
    /// then renamed to `root/<experiment>/<run-id>/` — the rename is the
    /// commit point.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the run id is taken (runs are immutable), plus
    /// any underlying I/O error.
    pub fn save(&self, manifest: &RunManifest, rows: &[RowRecord]) -> io::Result<PathBuf> {
        let exp_dir = self.root.join(&manifest.experiment);
        let final_dir = exp_dir.join(&manifest.run_id);
        if final_dir.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "run directory {} already exists (runs are immutable)",
                    final_dir.display()
                ),
            ));
        }
        fs::create_dir_all(&exp_dir)?;
        let tmp_dir = exp_dir.join(format!(".tmp-{}-{}", manifest.run_id, std::process::id()));
        // A leftover temp dir from a crashed run with the same id+pid is
        // stale by construction; start clean.
        let _ = fs::remove_dir_all(&tmp_dir);
        fs::create_dir_all(&tmp_dir)?;
        let result =
            self.write_run_files(&tmp_dir, manifest, rows).and_then(|()| {
                match fs::rename(&tmp_dir, &final_dir) {
                    Ok(()) => Ok(final_dir.clone()),
                    Err(e) => Err(e),
                }
            });
        if result.is_err() {
            let _ = fs::remove_dir_all(&tmp_dir);
        }
        result
    }

    fn write_run_files(
        &self,
        dir: &Path,
        manifest: &RunManifest,
        rows: &[RowRecord],
    ) -> io::Result<()> {
        let mut rows_out = BufWriter::new(fs::File::create(dir.join(ROWS_FILE))?);
        for row in rows {
            serde_json::to_writer(&mut rows_out, row)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            rows_out.write_all(b"\n")?;
        }
        rows_out.into_inner().map_err(|e| e.into_error())?.sync_all()?;

        let mut manifest_out = BufWriter::new(fs::File::create(dir.join(MANIFEST_FILE))?);
        serde_json::to_writer(&mut manifest_out, manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        manifest_out.write_all(b"\n")?;
        manifest_out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    }

    /// All committed runs, sorted by experiment, then timestamp, then run
    /// id. Temp directories and torn/partial runs (no parseable manifest)
    /// are never listed.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk I/O errors; a missing root is an empty
    /// store, not an error.
    pub fn list(&self) -> io::Result<Vec<StoredRun>> {
        let mut runs = Vec::new();
        let experiments = match fs::read_dir(&self.root) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(runs),
            Err(e) => return Err(e),
        };
        for exp in experiments {
            let exp = exp?;
            if !exp.file_type()?.is_dir() {
                continue;
            }
            for run in fs::read_dir(exp.path())? {
                let run = run?;
                let name = run.file_name();
                let name = name.to_string_lossy();
                if !run.file_type()?.is_dir() || name.starts_with(".tmp-") {
                    continue;
                }
                if let Some(stored) = read_run_dir(&run.path()) {
                    runs.push(stored);
                }
            }
        }
        runs.sort_by(|a, b| {
            (&a.manifest.experiment, &a.manifest.timestamp_utc, &a.manifest.run_id).cmp(&(
                &b.manifest.experiment,
                &b.manifest.timestamp_utc,
                &b.manifest.run_id,
            ))
        });
        Ok(runs)
    }

    /// Finds a committed run by id, searching every experiment. Ambiguous
    /// ids (the same run id under two experiments) resolve to the first in
    /// [`RunStore::list`] order.
    ///
    /// # Errors
    ///
    /// As [`RunStore::list`].
    pub fn find(&self, run_id: &str) -> io::Result<Option<StoredRun>> {
        Ok(self.list()?.into_iter().find(|r| r.manifest.run_id == run_id))
    }
}

/// Reads one run directory; `None` for torn runs (missing or unparseable
/// manifest), which by the atomic-write protocol can only be leftovers
/// from interrupted processes.
fn read_run_dir(dir: &Path) -> Option<StoredRun> {
    let text = fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
    let manifest: RunManifest = serde_json::from_str(text.trim()).ok()?;
    Some(StoredRun { manifest, dir: dir.to_path_buf() })
}
