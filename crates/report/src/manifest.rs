//! Run manifests: the provenance half of a persisted run.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// An owned measurement record — the on-disk row format shared by every
/// experiment binary. JSON emitted for a row parses back into a
/// `RowRecord` and re-serializes to the identical bytes, the contract
/// that makes `rows.jsonl` re-ingestable and diffable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowRecord {
    /// Experiment id (e.g. "E1", "T11").
    pub experiment: String,
    /// Series label within the experiment.
    pub series: String,
    /// Instance size `n`.
    pub n: usize,
    /// Seed used.
    pub seed: u64,
    /// The measured complexity.
    pub measured: f64,
    /// Optional extra fields.
    pub extra: Vec<(String, f64)>,
}

/// Provenance of one persisted run: everything needed to re-run or audit
/// it — which binary, when, on which commit, over which grid, and with
/// which execution strategy.
///
/// `Deserialize` is hand-written (not derived) so manifests written
/// before the `meta` field existed still parse — `meta` defaults to
/// empty when the key is absent.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RunManifest {
    /// Experiment binary name (e.g. "landscape").
    pub experiment: String,
    /// Unique run id within the experiment (directory name).
    pub run_id: String,
    /// UTC wall-clock time the run was recorded, `YYYY-MM-DDTHH:MM:SSZ`.
    pub timestamp_utc: String,
    /// Git revision of the working tree (HEAD commit hash, or "unknown").
    pub git_rev: String,
    /// Distinct seeds of the grid, ascending.
    pub seeds: Vec<u64>,
    /// Distinct series labels, in first-appearance order.
    pub series: Vec<String>,
    /// Distinct instance sizes, ascending.
    pub sizes: Vec<usize>,
    /// Total number of rows in `rows.jsonl`.
    pub row_count: usize,
    /// Worker-pool width the run executed with.
    pub pool_width: usize,
    /// Whether the sweep was shrunk (`--quick`).
    pub quick: bool,
    /// Whether cells ran sequentially (`--seq`).
    pub sequential: bool,
    /// Free-form provenance pairs recorded by the producing binary —
    /// e.g. the `scenarios` bin stamps `("scenario", name)` and
    /// `("spec_hash", hex)` so a persisted run is traceable to the exact
    /// declarative spec that produced it. Empty for binaries with nothing
    /// to add.
    pub meta: Vec<(String, String)>,
}

impl Deserialize for RunManifest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(RunManifest {
            experiment: Deserialize::from_value(v.field("experiment")?)?,
            run_id: Deserialize::from_value(v.field("run_id")?)?,
            timestamp_utc: Deserialize::from_value(v.field("timestamp_utc")?)?,
            git_rev: Deserialize::from_value(v.field("git_rev")?)?,
            seeds: Deserialize::from_value(v.field("seeds")?)?,
            series: Deserialize::from_value(v.field("series")?)?,
            sizes: Deserialize::from_value(v.field("sizes")?)?,
            row_count: Deserialize::from_value(v.field("row_count")?)?,
            pool_width: Deserialize::from_value(v.field("pool_width")?)?,
            quick: Deserialize::from_value(v.field("quick")?)?,
            sequential: Deserialize::from_value(v.field("sequential")?)?,
            // Absent in pre-meta manifests: default to empty.
            meta: match v.field("meta") {
                Ok(m) => Deserialize::from_value(m)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

impl RunManifest {
    /// Builds a manifest for `rows`, summarizing the grid (seed set,
    /// series, sizes) and stamping provenance (current UTC time, git rev).
    #[must_use]
    pub fn new(
        experiment: &str,
        run_id: &str,
        rows: &[RowRecord],
        pool_width: usize,
        quick: bool,
        sequential: bool,
    ) -> Self {
        let (seeds, sizes, series) = grid_summary(rows);
        RunManifest {
            experiment: experiment.to_string(),
            run_id: run_id.to_string(),
            timestamp_utc: utc_timestamp(),
            git_rev: git_rev(),
            seeds,
            series,
            sizes,
            row_count: rows.len(),
            pool_width,
            quick,
            sequential,
            meta: Vec::new(),
        }
    }

    /// Attaches free-form provenance pairs (builder style).
    #[must_use]
    pub fn with_meta(mut self, meta: Vec<(String, String)>) -> Self {
        self.meta = meta;
        self
    }

    /// Re-derives the grid summary from `rows` and compares it against
    /// what this manifest claims — the integrity half of `results verify`.
    /// Returns one human-readable line per mismatch (empty = consistent),
    /// so a manifest edited after the fact, or rows dropped/added behind
    /// its back, are caught without trusting the producing process.
    #[must_use]
    pub fn integrity_violations(&self, rows: &[RowRecord]) -> Vec<String> {
        let (seeds, sizes, series) = grid_summary(rows);
        let mut out = Vec::new();
        if rows.len() != self.row_count {
            out.push(format!(
                "row_count: manifest claims {}, rows.jsonl holds {}",
                self.row_count,
                rows.len()
            ));
        }
        if seeds != self.seeds {
            out.push(format!("seeds: manifest claims {:?}, rows yield {seeds:?}", self.seeds));
        }
        if sizes != self.sizes {
            out.push(format!("sizes: manifest claims {:?}, rows yield {sizes:?}", self.sizes));
        }
        if series != self.series {
            out.push(format!("series: manifest claims {:?}, rows yield {series:?}", self.series));
        }
        out
    }
}

/// The grid summary (`new` records it; `integrity_violations` re-derives
/// it): distinct seeds ascending, distinct sizes ascending, series in
/// first-appearance order.
fn grid_summary(rows: &[RowRecord]) -> (Vec<u64>, Vec<usize>, Vec<String>) {
    let mut seeds: Vec<u64> = rows.iter().map(|r| r.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut series: Vec<String> = Vec::new();
    for r in rows {
        if !series.contains(&r.series) {
            series.push(r.series.clone());
        }
    }
    (seeds, sizes, series)
}

/// The current UTC wall-clock time as `YYYY-MM-DDTHH:MM:SSZ` (no external
/// time crate: civil-from-days computed directly from the Unix epoch).
#[must_use]
pub fn utc_timestamp() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    format_utc(secs)
}

/// Formats Unix seconds as `YYYY-MM-DDTHH:MM:SSZ`.
#[must_use]
pub fn format_utc(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    let rem = unix_secs % 86_400;
    let (h, m, s) = (rem / 3_600, (rem / 60) % 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the Unix era.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mth = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mth <= 2 { y + 1 } else { y };
    format!("{y:04}-{mth:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// The git HEAD commit hash of the workspace this crate was built from,
/// read straight from `.git` (no `git` binary needed). Resolution order:
/// the build-time workspace location (so a binary run from anywhere still
/// records the right repository), then the `GITHUB_SHA` environment
/// variable (exact in CI even for detached worktrees), then a walk up
/// from the current directory, then `"unknown"`.
#[must_use]
pub fn git_rev() -> String {
    git_rev_from(Path::new(env!("CARGO_MANIFEST_DIR")))
        .or_else(|| std::env::var("GITHUB_SHA").ok().filter(|s| !s.is_empty()))
        .or_else(|| git_rev_from(Path::new(".")))
        .unwrap_or_else(|| "unknown".to_string())
}

fn git_rev_from(start: &Path) -> Option<String> {
    let mut dir: PathBuf = start.canonicalize().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return resolve_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_string());
        }
        // Ref may only exist packed. Lines are `<hash> <refname>`; match
        // the full refname, not a suffix (`refs/heads/a/refs/heads/main`
        // must not shadow `refs/heads/main`).
        if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
            for line in packed.lines() {
                if let Some((hash, name)) = line.split_once(' ') {
                    if name.trim() == refname {
                        return Some(hash.to_string());
                    }
                }
            }
        }
        return None;
    }
    (!head.is_empty()).then(|| head.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(series: &str, n: usize, seed: u64) -> RowRecord {
        RowRecord {
            experiment: "E1".into(),
            series: series.into(),
            n,
            seed,
            measured: 1.0,
            extra: vec![],
        }
    }

    #[test]
    fn manifest_summarizes_grid() {
        let rows = vec![
            row("b", 64, 2),
            row("a", 16, 1),
            row("b", 16, 2),
            row("a", 64, 1),
            row("a", 16, 1),
        ];
        let m = RunManifest::new("demo", "r1", &rows, 4, true, false);
        assert_eq!(m.seeds, vec![1, 2]);
        assert_eq!(m.sizes, vec![16, 64]);
        assert_eq!(m.series, vec!["b".to_string(), "a".to_string()]);
        assert_eq!(m.row_count, 5);
        assert!(m.quick && !m.sequential);
        assert_eq!(m.timestamp_utc.len(), 20);
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = RunManifest::new("demo", "r1", &[row("s", 8, 3)], 1, false, true)
            .with_meta(vec![("spec_hash".into(), "deadbeef".into())]);
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.meta[0].1, "deadbeef");
    }

    #[test]
    fn manifest_without_meta_key_still_parses() {
        // A pre-meta manifest on disk: the field is simply absent.
        let m = RunManifest::new("demo", "r1", &[row("s", 8, 3)], 1, false, true);
        let json = serde_json::to_string(&m).unwrap();
        let legacy = json.replace(",\"meta\":[]", "");
        assert_ne!(legacy, json, "meta key must have been stripped");
        let back: RunManifest = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, m);
        assert!(back.meta.is_empty());
    }

    #[test]
    fn integrity_violations_catch_tampering() {
        let rows = vec![row("a", 16, 1), row("b", 64, 2)];
        let m = RunManifest::new("demo", "r1", &rows, 4, false, false);
        assert!(m.integrity_violations(&rows).is_empty());
        // Dropping a row trips the count, and the seed/size/series sets.
        let truncated = &rows[..1];
        let v = m.integrity_violations(truncated);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v[0].contains("manifest claims 2"), "{}", v[0]);
        // A relabeled series trips only the series summary.
        let mut relabeled = rows.clone();
        relabeled[1].series = "c".into();
        let v = m.integrity_violations(&relabeled);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("series:"), "{}", v[0]);
    }

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC = 951827696.
        assert_eq!(format_utc(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-07-30 00:00:00 UTC = 1785369600.
        assert_eq!(format_utc(1_785_369_600), "2026-07-30T00:00:00Z");
    }

    #[test]
    fn git_rev_resolves_this_repository() {
        // The tests run inside the repo; HEAD must resolve to a hex hash.
        let rev = git_rev();
        assert!(rev == "unknown" || rev.len() >= 7, "unexpected rev: {rev}");
    }
}
