//! `results` — the longitudinal-tracking CLI over the persistent run store.
//!
//! ```text
//! results [--out DIR] list
//! results [--out DIR] show <run-id>
//! results [--out DIR] diff <run-a> <run-b> [--tol X]
//! results [--out DIR] trend <experiment> <series>
//! results [--out DIR] verify <run-id>
//! ```
//!
//! `diff` exits nonzero when the runs differ, so it doubles as a CI gate
//! (parallel vs `--seq` runs of the same grid must diff empty).
//!
//! `show` surfaces the grid scheduler's aggregate prediction error
//! (`sched-pred`) when the manifest carries `predicted_ms:`/`actual_ms:`
//! meta pairs; `trend` appends a `pred-err` column, padded with `-` for
//! runs without them — including pre-scheduler manifests, whose missing
//! `meta` field deserializes as empty.
//!
//! `verify` is the independent-certifier gate: it re-derives the
//! manifest's grid summary from `rows.jsonl`, and for scenario runs
//! regenerates every instance from its `(family, n, seed)` coordinates
//! and replays every algorithm — with the `lcl_certify` checkers on —
//! comparing the recomputed rows exactly. It does NOT trust the process
//! that wrote the run. Exit codes: 0 certified, 1 violations found,
//! 2 cannot verify (missing run, unreadable rows).

use lcl_report::{diff_rows, trend, Delta, RunStore, StoredRun};
use std::process::ExitCode;

const USAGE: &str = "usage: results [--out DIR] <command>
  list                          all persisted runs
  show <run-id>                 manifest and rows of one run
  diff <run-a> <run-b> [--tol X]   per-row field deltas (exit 1 if any)
  trend <experiment> <series>   measured-vs-n across an experiment's runs
  verify <run-id>               independently re-derive and certify a run
                                (exit 1 on any violation)";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let root = match take_value_flag(&mut args, "--out") {
        Ok(dir) => dir.map_or_else(RunStore::default_root, Into::into),
        Err(msg) => return usage_error(&msg),
    };
    let store = RunStore::new(root);
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&store),
        Some("show") => match args.get(1) {
            Some(id) => cmd_show(&store, id),
            None => return usage_error("show: missing <run-id>"),
        },
        Some("diff") => {
            let tol = match take_value_flag(&mut args, "--tol") {
                Ok(t) => match t.map(|t| t.parse::<f64>()) {
                    None => 0.0,
                    Some(Ok(t)) => t,
                    Some(Err(e)) => return usage_error(&format!("--tol: {e}")),
                },
                Err(msg) => return usage_error(&msg),
            };
            match (args.get(1), args.get(2)) {
                (Some(a), Some(b)) => cmd_diff(&store, a, b, tol),
                _ => return usage_error("diff: missing <run-a> <run-b>"),
            }
        }
        Some("trend") => match (args.get(1), args.get(2)) {
            (Some(exp), Some(series)) => cmd_trend(&store, exp, series),
            _ => return usage_error("trend: missing <experiment> <series>"),
        },
        Some("verify") => match args.get(1) {
            Some(id) => cmd_verify(&store, id),
            None => return usage_error("verify: missing <run-id>"),
        },
        _ => return usage_error("missing command"),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("results: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("results: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Removes `flag VALUE` from `args`, returning the value if present.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn cmd_list(store: &RunStore) -> std::io::Result<ExitCode> {
    let runs = store.list()?;
    if runs.is_empty() {
        println!("no runs under {}", store.root().display());
        return Ok(ExitCode::SUCCESS);
    }
    println!(
        "{:<16} {:<28} {:<20} {:>6}  {:<10} flags",
        "experiment", "run-id", "timestamp", "rows", "git"
    );
    for run in runs {
        let m = &run.manifest;
        let mut flags = Vec::new();
        if m.quick {
            flags.push("quick");
        }
        if m.sequential {
            flags.push("seq");
        }
        println!(
            "{:<16} {:<28} {:<20} {:>6}  {:<10} {}",
            m.experiment,
            m.run_id,
            m.timestamp_utc,
            m.row_count,
            &m.git_rev[..m.git_rev.len().min(10)],
            flags.join(",")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn load(store: &RunStore, run_id: &str) -> std::io::Result<StoredRun> {
    store.find(run_id)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no run `{run_id}` under {}", store.root().display()),
        )
    })
}

fn cmd_show(store: &RunStore, run_id: &str) -> std::io::Result<ExitCode> {
    let run = load(store, run_id)?;
    let m = &run.manifest;
    println!("experiment   {}", m.experiment);
    println!("run-id       {}", m.run_id);
    println!("timestamp    {}", m.timestamp_utc);
    println!("git-rev      {}", m.git_rev);
    println!("pool-width   {}", m.pool_width);
    println!("quick/seq    {}/{}", m.quick, m.sequential);
    println!("seeds        {:?}", m.seeds);
    println!("sizes        {:?}", m.sizes);
    println!("series       {}", m.series.join(", "));
    println!("rows         {}", m.row_count);
    for (k, v) in &m.meta {
        println!("meta         {k} = {v}");
    }
    if let Some(pe) = lcl_report::prediction_error(&m.meta) {
        println!(
            "sched-pred   {} cell(s), mean |rel err| {:.1}%, max {:.1}%",
            pe.cells,
            pe.mean_abs_rel * 100.0,
            pe.max_abs_rel * 100.0
        );
    }
    println!();
    println!("{:<4} {:<28} {:>9} {:>6} {:>12}  extra", "exp", "series", "n", "seed", "measured");
    for r in run.rows()? {
        let extra = r.extra.iter().map(|(k, v)| format!("{k}={v:.2}")).collect::<Vec<_>>();
        println!(
            "{:<4} {:<28} {:>9} {:>6} {:>12.2}  {}",
            r.experiment,
            r.series,
            r.n,
            r.seed,
            r.measured,
            extra.join(" ")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(store: &RunStore, a: &str, b: &str, tol: f64) -> std::io::Result<ExitCode> {
    let run_a = load(store, a)?;
    let run_b = load(store, b)?;
    let deltas = diff_rows(&run_a.rows()?, &run_b.rows()?, tol);
    if deltas.is_empty() {
        println!("runs `{a}` and `{b}` are identical (tol {tol})");
        return Ok(ExitCode::SUCCESS);
    }
    for d in &deltas {
        match d {
            Delta::OnlyInA(k) => println!("only in {a}: {k}"),
            Delta::OnlyInB(k) => println!("only in {b}: {k}"),
            Delta::Field { key, field, a: va, b: vb } => {
                println!("{key}: {field} {va} -> {vb} (Δ {})", vb - va);
            }
        }
    }
    println!("{} delta(s)", deltas.len());
    Ok(ExitCode::FAILURE)
}

fn cmd_verify(store: &RunStore, run_id: &str) -> std::io::Result<ExitCode> {
    let run = load(store, run_id)?;
    let v = lcl_scenario::verify_run(&run)?;
    println!("run          {}/{}", run.manifest.experiment, run.manifest.run_id);
    println!("rows         {}", v.row_count);
    println!("replayed     {} (scenario rows re-run with independent certification)", v.replayed);
    if v.is_clean() {
        println!("verdict      certified");
        return Ok(ExitCode::SUCCESS);
    }
    for x in &v.violations {
        println!("violation    {x}");
    }
    println!("verdict      REJECTED ({} violation(s))", v.violations.len());
    Ok(ExitCode::FAILURE)
}

fn cmd_trend(store: &RunStore, experiment: &str, series: &str) -> std::io::Result<ExitCode> {
    let runs: Vec<StoredRun> =
        store.list()?.into_iter().filter(|r| r.manifest.experiment == experiment).collect();
    if runs.is_empty() {
        println!("no runs for experiment `{experiment}` under {}", store.root().display());
        return Ok(ExitCode::SUCCESS);
    }
    let points = trend(&runs, series)?;
    if points.is_empty() {
        println!("no rows for series `{series}` in {} run(s)", runs.len());
        return Ok(ExitCode::SUCCESS);
    }
    // Scheduler prediction error per run; "-" for runs without the
    // predicted/actual meta pairs (unscheduled or pre-scheduler runs).
    let pred_err: std::collections::HashMap<&str, String> = runs
        .iter()
        .map(|r| {
            let label = lcl_report::prediction_error(&r.manifest.meta)
                .map_or_else(|| "-".to_string(), |e| format!("{:.1}%", e.mean_abs_rel * 100.0));
            (r.manifest.run_id.as_str(), label)
        })
        .collect();
    println!(
        "{:<28} {:<20} {:>9} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "run-id", "timestamp", "n", "mean", "p50", "p95", "samples", "pred-err"
    );
    for p in points {
        println!(
            "{:<28} {:<20} {:>9} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>9}",
            p.run_id,
            p.timestamp_utc,
            p.n,
            p.mean_measured,
            p.p50_measured,
            p.p95_measured,
            p.samples,
            pred_err.get(p.run_id.as_str()).map_or("-", String::as_str)
        );
    }
    Ok(ExitCode::SUCCESS)
}
