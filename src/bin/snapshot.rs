//! `snapshot` — the frozen-graph image CLI (CI's snapshot roundtrip gate).
//!
//! ```text
//! snapshot freeze <family-slug> <n> <seed> <path>   build + freeze an instance
//! snapshot check <path>                             load + validate (hash, bounds)
//! snapshot info <path>                              print header fields only
//! snapshot roundtrip <family-slug> <n> <seed>       freeze → load → byte-compare
//! snapshot stream <family-slug> <n> <seed> <dir> [max-shards]
//!                                                   stream-freeze to a sharded store
//! ```
//!
//! `check` exercises the full `Graph::load_frozen` validation surface —
//! magic, version, payload length, FNV content hash, CSR bounds — so a
//! corrupted image exits nonzero with the loader's message. `info` reads
//! **only the 32-byte header** (no tables are mapped or validated): the
//! cheap way to identify an image of any size. `roundtrip`
//! is self-contained: it builds the instance, freezes it to a temp file,
//! loads it back, and byte-compares both the structural graph and a
//! re-frozen image (the frozen format is canonical: freeze ∘ load ∘
//! freeze is the identity on bytes). `stream` never materializes the
//! graph: the generator emits straight into a `ShardedSnapshotWriter`
//! (bounded working memory — CI's huge-instance `ulimit -v` leg drives
//! it at n = 2²²). Family slugs are the scenario layer's (`torus`,
//! `hypercube`, `3-regular`, `caterpillar-40`, `pods-p8x2`, …).
//!
//! Exit codes: 0 ok, 1 validation/roundtrip failure, 2 usage error.

use lcl_graph::{snapshot_header, Graph, ShardedSnapshotWriter, DEFAULT_MAX_SHARDS};
use lcl_scenario::FamilySpec;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: snapshot <command>
  freeze <family-slug> <n> <seed> <path>   build the instance and freeze it
  check <path>                             load + validate a frozen image
  info <path>                              print header fields (no table load)
  roundtrip <family-slug> <n> <seed>       freeze -> load -> byte-compare
  stream <family-slug> <n> <seed> <dir> [max-shards]
                                           stream-freeze to a sharded store";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["freeze", slug, n, seed, path] => cmd_freeze(slug, n, seed, Path::new(path)),
        ["check", path] => cmd_check(Path::new(path)),
        ["info", path] => cmd_info(Path::new(path)),
        ["roundtrip", slug, n, seed] => cmd_roundtrip(slug, n, seed),
        ["stream", slug, n, seed, dir] => cmd_stream(slug, n, seed, Path::new(dir), None),
        ["stream", slug, n, seed, dir, max] => cmd_stream(slug, n, seed, Path::new(dir), Some(max)),
        _ => {
            eprintln!("snapshot: missing or unknown command\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn build(slug: &str, n: &str, seed: &str) -> Result<Graph, String> {
    let family =
        FamilySpec::from_slug(slug).ok_or_else(|| format!("unknown family slug `{slug}`"))?;
    let n: usize = n.parse().map_err(|_| format!("bad n `{n}`"))?;
    let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
    family.build(n, seed).map_err(|e| e.to_string())
}

fn cmd_freeze(slug: &str, n: &str, seed: &str, path: &Path) -> ExitCode {
    let g = match build(slug, n, seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::from(2);
        }
    };
    match g.freeze(path) {
        Ok(hash) => {
            println!(
                "froze {slug} n={} m={} to {} (hash {hash:016x})",
                g.node_count(),
                g.edge_count(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot: freeze failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(path: &Path) -> ExitCode {
    match Graph::load_frozen(path) {
        Ok(g) => {
            println!(
                "ok: {} nodes, {} edges, hash {:016x}",
                g.node_count(),
                g.edge_count(),
                g.content_hash()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot: invalid image {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_info(path: &Path) -> ExitCode {
    match snapshot_header(path) {
        Ok(h) => {
            println!(
                "{}: lclg v{} n={} m={} max_degree={} hash={:016x}",
                path.display(),
                h.version,
                h.n,
                h.m,
                h.max_degree,
                h.hash
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot: unreadable header {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_stream(slug: &str, n: &str, seed: &str, dir: &Path, max: Option<&str>) -> ExitCode {
    let parsed = (|| -> Result<(FamilySpec, usize, u64, usize), String> {
        let family =
            FamilySpec::from_slug(slug).ok_or_else(|| format!("unknown family slug `{slug}`"))?;
        let n: usize = n.parse().map_err(|_| format!("bad n `{n}`"))?;
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
        let max_shards = match max {
            None => DEFAULT_MAX_SHARDS,
            Some(s) => match s.parse() {
                Ok(k) if k >= 1 => k,
                _ => return Err(format!("bad max-shards `{s}` (want an integer >= 1)")),
            },
        };
        Ok((family, n, seed, max_shards))
    })();
    let (family, n, seed, max_shards) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::from(2);
        }
    };
    let streamed = (|| -> Result<_, String> {
        let mut w = ShardedSnapshotWriter::create(dir, max_shards)
            .map_err(|e| format!("cannot start store in {}: {e}", dir.display()))?;
        family.build_into(n, seed, &mut w).map_err(|e| e.to_string())?;
        w.finish().map_err(|e| format!("publish failed: {e}"))
    })();
    match streamed {
        Ok(s) => {
            println!(
                "streamed {slug} n={} m={} max_degree={} into {} shard(s) at {} (hash {:016x})",
                s.n,
                s.m,
                s.max_degree,
                s.shards,
                dir.display(),
                s.graph_hash
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot: stream failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_roundtrip(slug: &str, n: &str, seed: &str) -> ExitCode {
    let g = match build(slug, n, seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::from(2);
        }
    };
    let dir = std::env::temp_dir();
    let a = dir.join(format!("snapshot-rt-{}-a.lclg", std::process::id()));
    let b = dir.join(format!("snapshot-rt-{}-b.lclg", std::process::id()));
    let result = roundtrip(&g, &a, &b);
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    match result {
        Ok(hash) => {
            println!(
                "roundtrip ok: {slug} n={} m={} hash {hash:016x}",
                g.node_count(),
                g.edge_count()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot: roundtrip failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn roundtrip(g: &Graph, a: &Path, b: &Path) -> Result<u64, String> {
    let hash = g.freeze(a).map_err(|e| format!("freeze: {e}"))?;
    let loaded = Graph::load_frozen(a).map_err(|e| format!("load: {e}"))?;
    if &loaded != g {
        return Err("loaded graph differs structurally from the original".into());
    }
    if loaded.content_hash() != hash {
        return Err("loaded content hash differs from the frozen header".into());
    }
    loaded.freeze(b).map_err(|e| format!("re-freeze: {e}"))?;
    let bytes_a = std::fs::read(a).map_err(|e| e.to_string())?;
    let bytes_b = std::fs::read(b).map_err(|e| e.to_string())?;
    if bytes_a != bytes_b {
        return Err("re-frozen image is not byte-identical".into());
    }
    Ok(hash)
}
