//! Umbrella crate for the LCL locality-landscape reproduction
//! (Balliu, Brandt, Olivetti, Suomela; PODC 2020).
//!
//! This crate re-exports every workspace crate under one roof and hosts the
//! cross-crate integration tests (`tests/`) and the guided examples
//! (`examples/`). Library users should normally depend on the individual
//! crates; the umbrella exists so the whole reproduction builds, tests, and
//! demos as a single `cargo` invocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lcl_algos as algos;
pub use lcl_bench as bench;
pub use lcl_core as core;
pub use lcl_gadget as gadget;
pub use lcl_graph as graph;
pub use lcl_local as local;
pub use lcl_padding as padding;
pub use lcl_report as report;
pub use lcl_scenario as scenario;
