//! Grid test: every algorithm × every suitable generator, always verified
//! by the ne-LCL checker (the integration behind the E1 landscape).

use lcl_algos::{linial, luby, matching, sinkless_det, sinkless_rand};
use lcl_core::problems::{
    MaximalIndependentSet, MaximalMatching, SinklessOrientation, VertexColoring,
};
use lcl_core::{check, Labeling};
use lcl_graph::{gen, Graph};
use lcl_local::{IdAssignment, Network};

fn instances(min_degree_3: bool) -> Vec<(String, Graph)> {
    let mut out: Vec<(String, Graph)> = Vec::new();
    if !min_degree_3 {
        out.push(("cycle-31".into(), gen::cycle(31)));
        out.push(("path-40".into(), gen::path(40)));
        out.push(("grid-8x5".into(), gen::grid(8, 5)));
        out.push(("tree-63".into(), gen::complete_binary_tree(6)));
        out.push(("random-tree-50".into(), gen::random_tree(50, 5)));
    }
    out.push(("torus-6x6".into(), gen::torus(6, 6)));
    out.push(("3reg-60".into(), gen::random_regular(60, 3, 9).unwrap()));
    out.push(("4reg-50".into(), gen::random_regular(50, 4, 9).unwrap()));
    out.push(("5reg-40".into(), gen::random_regular(40, 5, 9).unwrap()));
    out.push(("disjoint-cycles".into(), gen::disjoint_cycles(3, 9)));
    out
}

#[test]
fn coloring_everywhere() {
    for (name, g) in instances(false) {
        if g.edges().any(|e| g.is_self_loop(e)) {
            continue;
        }
        let palette = g.max_degree() as u32 + 1;
        let net = Network::new(g, IdAssignment::Shuffled { seed: 3 });
        let out = linial::run(&net);
        let input = Labeling::uniform(net.graph(), ());
        let res = check(&VertexColoring::new(palette), net.graph(), &input, &out.labeling);
        assert!(res.is_ok(), "{name}: {:?}", res.violations.first());
    }
}

#[test]
fn mis_everywhere() {
    for (name, g) in instances(false) {
        let net = Network::new(g, IdAssignment::Shuffled { seed: 4 });
        let out = luby::run(&net, 4).unwrap();
        let input = Labeling::uniform(net.graph(), ());
        let res = check(&MaximalIndependentSet, net.graph(), &input, &out.labeling);
        assert!(res.is_ok(), "{name}: {:?}", res.violations.first());
    }
}

#[test]
fn matching_everywhere() {
    for (name, g) in instances(false) {
        let net = Network::new(g, IdAssignment::Shuffled { seed: 5 });
        let out = matching::run(&net, 5);
        let input = Labeling::uniform(net.graph(), ());
        let res = check(&MaximalMatching, net.graph(), &input, &out.labeling);
        assert!(res.is_ok(), "{name}: {:?}", res.violations.first());
    }
}

#[test]
fn sinkless_everywhere_on_min_degree_3() {
    for (name, g) in instances(true) {
        let net = Network::new(g, IdAssignment::Shuffled { seed: 6 });
        let input = Labeling::uniform(net.graph(), ());
        let det = sinkless_det::run(&net, &sinkless_det::Params::default());
        let res = check(&SinklessOrientation::new(), net.graph(), &input, &det.labeling);
        assert!(res.is_ok(), "{name} det: {:?}", res.violations.first());
        let rand = sinkless_rand::run(&net, &sinkless_rand::Params::default(), 6);
        let res = check(&SinklessOrientation::new(), net.graph(), &input, &rand.labeling);
        assert!(res.is_ok(), "{name} rand: {:?}", res.violations.first());
    }
}

#[test]
fn sinkless_on_low_degree_graphs_respects_default_variant() {
    // Trees and paths have low-degree nodes only where the default variant
    // relaxes the constraint; the algorithms must still orient everything.
    for (name, g) in [
        ("tree".to_string(), gen::complete_binary_tree(5)),
        ("path".to_string(), gen::path(20)),
        ("cycle".to_string(), gen::cycle(20)),
    ] {
        let net = Network::new(g, IdAssignment::Shuffled { seed: 7 });
        let input = Labeling::uniform(net.graph(), ());
        let det = sinkless_det::run(&net, &sinkless_det::Params::default());
        let res = check(&SinklessOrientation::new(), net.graph(), &input, &det.labeling);
        assert!(res.is_ok(), "{name}: {:?}", res.violations.first());
    }
}

#[test]
fn adversarial_sequential_ids_are_fine() {
    // Sequential ids are the classic adversarial assignment for greedy
    // symmetry breaking; all algorithms must still verify.
    let g = gen::random_regular(64, 3, 8).unwrap();
    let net = Network::new(g, IdAssignment::Sequential);
    let input = Labeling::uniform(net.graph(), ());
    let det = sinkless_det::run(&net, &sinkless_det::Params::default());
    check(&SinklessOrientation::new(), net.graph(), &input, &det.labeling).expect_ok();
    let col = linial::run(&net);
    check(&VertexColoring::new(4), net.graph(), &input, &col.labeling).expect_ok();
}

#[test]
fn sparse_id_space_is_fine() {
    let g = gen::random_regular(64, 3, 9).unwrap();
    let net = Network::new(g, IdAssignment::SparseShuffled { seed: 9 });
    let input = Labeling::uniform(net.graph(), ());
    let det = sinkless_det::run(&net, &sinkless_det::Params::default());
    check(&SinklessOrientation::new(), net.graph(), &input, &det.labeling).expect_ok();
}

#[test]
fn sinkless_on_margulis_expanders() {
    // The explicit 8-regular Margulis expander: a deterministic hard
    // family (no rejection sampling), with native self-loops/parallels.
    for m in [8usize, 16] {
        let g = gen::margulis(m);
        let net = Network::new(g, IdAssignment::Shuffled { seed: m as u64 });
        let input = Labeling::uniform(net.graph(), ());
        let det = sinkless_det::run(&net, &sinkless_det::Params::default());
        check(&SinklessOrientation::new(), net.graph(), &input, &det.labeling).expect_ok();
        let rand = sinkless_rand::run(&net, &sinkless_rand::Params::default(), 3);
        check(&SinklessOrientation::new(), net.graph(), &input, &rand.labeling).expect_ok();
    }
}
