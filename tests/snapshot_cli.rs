//! CLI-level checks for the `snapshot` binary's header-only `info`
//! command and the streaming `stream` command — the two entry points the
//! CI scale-smoke leg drives, exercised here at sane sizes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn snapshot(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snapshot")).args(args).output().expect("snapshot binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcl-snapcli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn info_prints_header_fields_without_loading_tables() {
    let dir = tempdir("info");
    let image = dir.join("torus.lclg");
    let image_str = image.display().to_string();
    let froze = snapshot(&["freeze", "torus", "64", "1", &image_str]);
    assert!(froze.status.success(), "{}", String::from_utf8_lossy(&froze.stderr));

    let out = snapshot(&["info", &image_str]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let line = String::from_utf8_lossy(&out.stdout);
    assert!(line.contains("lclg v1"), "{line}");
    assert!(line.contains("n=64"), "{line}");
    assert!(line.contains("m=128"), "{line}");
    assert!(line.contains("max_degree=4"), "{line}");
    assert!(line.contains("hash="), "{line}");

    // Truncating the header makes `info` fail loudly with a nonzero exit.
    std::fs::write(&image, b"LCLG").unwrap();
    let bad = snapshot(&["info", &image_str]);
    assert_eq!(bad.status.code(), Some(1));
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("unreadable header"), "{err}");

    let missing = snapshot(&["info", dir.join("nope.lclg").display().to_string().as_str()]);
    assert_eq!(missing.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_publishes_a_store_matching_the_monolithic_freeze() {
    let dir = tempdir("stream");
    let store = dir.join("pods.shards");
    let store_str = store.display().to_string();
    let out = snapshot(&["stream", "pods-p4x0", "64", "1", &store_str]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let line = String::from_utf8_lossy(&out.stdout);
    assert!(line.contains("n=64"), "{line}");
    assert!(line.contains("16 shard(s)"), "{line}");
    assert!(store.join("shards.json").is_file());

    // The stream's hash equals the monolithic freeze of the same cell.
    let image = dir.join("pods.lclg");
    let image_str = image.display().to_string();
    let froze = snapshot(&["freeze", "pods-p4x0", "64", "1", &image_str]);
    assert!(froze.status.success());
    let hash_of = |stdout: &[u8]| -> String {
        let text = String::from_utf8_lossy(stdout);
        let at = text.find("hash ").expect("hash in output") + "hash ".len();
        text[at..at + 16].to_string()
    };
    assert_eq!(hash_of(&out.stdout), hash_of(&froze.stdout));

    // max-shards caps the image count; garbage values are usage errors.
    let capped = dir.join("capped.shards");
    let capped_str = capped.display().to_string();
    let out = snapshot(&["stream", "pods-p4x0", "64", "1", &capped_str, "3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 shard(s)"));
    let bad = snapshot(&["stream", "pods-p4x0", "64", "1", &capped_str, "zero"]);
    assert_eq!(bad.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
