//! Lemma 9 (soundness of `Ψ`): **no** error labeling passes the checker on
//! a valid gadget. The proof's case analysis is adversarially probed with
//! random pointer assignments and with structured "smart" cheats.

use lcl_gadget::{build_gadget, check_psi, Dir, GadgetSpec, PsiOutput};
use proptest::prelude::*;

fn pointer_alphabet(delta: u8) -> Vec<PsiOutput> {
    let mut out = vec![
        PsiOutput::Pointer(Dir::Right),
        PsiOutput::Pointer(Dir::Left),
        PsiOutput::Pointer(Dir::Parent),
        PsiOutput::Pointer(Dir::RChild),
        PsiOutput::Pointer(Dir::Up),
    ];
    for i in 1..=delta {
        out.push(PsiOutput::Pointer(Dir::Down(i)));
    }
    out.push(PsiOutput::Error);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_error_labelings_rejected_on_valid_gadgets(
        picks in proptest::collection::vec(0usize..8, 64),
        delta in 2usize..=3,
        height in 2u32..=4,
    ) {
        let b = build_gadget(&GadgetSpec::uniform(delta, height));
        let alphabet = pointer_alphabet(delta as u8);
        let out: Vec<PsiOutput> = (0..b.len())
            .map(|i| alphabet[picks[i % picks.len()] % alphabet.len()])
            .collect();
        // All-error labelings (no Ok at all) on a *valid* gadget must be
        // rejected: constraint 2 forbids Error outputs outright, and pure
        // pointer labelings must break some chain (Lemma 9).
        let violations = check_psi(&b.graph, &b.input, &out, delta);
        prop_assert!(
            !violations.is_empty(),
            "an error labeling passed on a valid gadget: {out:?}"
        );
    }
}

/// The structured cheats from the Lemma 9 proof text.
#[test]
fn structured_cheats_rejected() {
    let b = build_gadget(&GadgetSpec::uniform(3, 4));
    let g = &b.graph;
    let input = &b.input;
    let step = |v: lcl_graph::NodeId, d: Dir| {
        g.ports(v).iter().find(|&&h| input.half(h).dir() == Some(d)).map(|&h| g.half_edge_peer(h))
    };

    // Cheat 1: everything points down-right (RChild chains).
    let cheat1: Vec<PsiOutput> = g
        .nodes()
        .map(|v| {
            if step(v, Dir::RChild).is_some() {
                PsiOutput::Pointer(Dir::RChild)
            } else if step(v, Dir::Left).is_some() {
                PsiOutput::Pointer(Dir::Left)
            } else {
                PsiOutput::Pointer(Dir::Up)
            }
        })
        .collect();
    assert!(!check_psi(g, input, &cheat1, 3).is_empty());

    // Cheat 2: every sub-gadget blames another one cyclically.
    let cheat2: Vec<PsiOutput> = g
        .nodes()
        .map(|v| match input.node(v).kind() {
            Some(lcl_gadget::NodeKind::Center) => PsiOutput::Pointer(Dir::Down(2)),
            _ => {
                if step(v, Dir::Parent).is_some() {
                    PsiOutput::Pointer(Dir::Parent)
                } else {
                    PsiOutput::Pointer(Dir::Up)
                }
            }
        })
        .collect();
    assert!(!check_psi(g, input, &cheat2, 3).is_empty());

    // Cheat 3: mixed Ok and pointers (violates the all-or-nothing clause
    // even where chains would be locally fine).
    let mut cheat3 = vec![PsiOutput::Ok; b.len()];
    cheat3[b.ports[0].index()] = PsiOutput::Pointer(Dir::Left);
    assert!(!check_psi(g, input, &cheat3, 3).is_empty());

    // The honest labeling is of course accepted.
    let honest = vec![PsiOutput::Ok; b.len()];
    assert!(check_psi(g, input, &honest, 3).is_empty());
}
