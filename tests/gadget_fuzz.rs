//! Completeness fuzzing for Lemmas 7, 8, and 10: every effective
//! structural corruption of a valid gadget is (a) detected by some node's
//! constant-radius check and (b) answered by algorithm `V` with a proof
//! that passes the `Ψ` checker.

use lcl_gadget::{
    build_gadget, check_psi, corrupt, structure_errors, GadgetFamily, GadgetSpec, LogGadgetFamily,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_corruptions_are_caught_and_proven(
        seed in 0u64..10_000,
        delta in 2usize..=4,
        height in 2u32..=5,
    ) {
        let b = build_gadget(&GadgetSpec::uniform(delta, height));
        let c = corrupt::random_corruption(&b, seed);
        prop_assume!(corrupt::is_effective(&b, &c));
        let (g, input) = corrupt::apply(&b, &c);

        // Lemma 7/8 completeness: some node sees the problem.
        let errs = structure_errors(&g, &input, delta);
        prop_assert!(
            errs.iter().any(|&e| e),
            "corruption {c:?} left the gadget locally valid"
        );

        // Lemma 10: V produces a proof, and the proof checks.
        let fam = LogGadgetFamily::new(delta);
        let out = fam.verify(&g, &input, g.node_count());
        prop_assert!(!out.all_ok());
        let violations = check_psi(&g, &input, &out.output, delta);
        prop_assert!(violations.is_empty(), "{c:?} → {violations:?}");
    }

    #[test]
    fn double_corruptions_are_caught(
        seed1 in 0u64..3_000,
        seed2 in 3_000u64..6_000,
    ) {
        // Two independent corruptions — errors in several places; the
        // verifier must still emit a globally consistent proof (this is
        // the multi-error regime of Lemma 10's case analysis: the center
        // picks the smallest erroneous sub-gadget, chains pick their
        // nearest reachable error).
        let b = build_gadget(&GadgetSpec::uniform(3, 4));
        let c1 = corrupt::random_corruption(&b, seed1);
        prop_assume!(corrupt::is_effective(&b, &c1));
        prop_assume!(matches!(
            c1,
            corrupt::Corruption::RelabelHalf { .. }
                | corrupt::Corruption::TogglePort(_)
                | corrupt::Corruption::ChangeIndex { .. }
                | corrupt::Corruption::CopyColor { .. }
        ));
        let (g1, input1) = corrupt::apply(&b, &c1);
        // Re-wrap to apply a second label-only corruption.
        let b2 = lcl_gadget::BuiltGadget {
            graph: g1,
            input: input1,
            center: b.center,
            ports: b.ports.clone(),
            spec: b.spec.clone(),
        };
        let c2 = corrupt::random_corruption(&b2, seed2);
        prop_assume!(corrupt::is_effective(&b2, &c2));
        prop_assume!(matches!(
            c2,
            corrupt::Corruption::RelabelHalf { .. }
                | corrupt::Corruption::TogglePort(_)
                | corrupt::Corruption::ChangeIndex { .. }
                | corrupt::Corruption::CopyColor { .. }
        ));
        let (g, input) = corrupt::apply(&b2, &c2);
        // The two corruptions may cancel (e.g. toggling the same port flag
        // twice), restoring a valid gadget — skip those.
        prop_assume!(input != b.input);

        let fam = LogGadgetFamily::new(3);
        let out = fam.verify(&g, &input, g.node_count());
        prop_assert!(!out.all_ok());
        let violations = check_psi(&g, &input, &out.output, 3);
        prop_assert!(violations.is_empty(), "{c1:?}+{c2:?} → {violations:?}");
    }
}

#[test]
fn exhaustive_single_half_relabels_small_gadget() {
    // Exhaustively relabel every half-edge to every wrong direction on a
    // small gadget: all must be caught with verifying proofs.
    use lcl_gadget::Dir;
    let b = build_gadget(&GadgetSpec::uniform(2, 3));
    let fam = LogGadgetFamily::new(2);
    let dirs = [
        Dir::Parent,
        Dir::Right,
        Dir::Left,
        Dir::LChild,
        Dir::RChild,
        Dir::Up,
        Dir::Down(1),
        Dir::Down(2),
    ];
    let mut tested = 0;
    for e in 0..b.graph.edge_count() as u32 {
        for side in [lcl_graph::Side::A, lcl_graph::Side::B] {
            for &dir in &dirs {
                let c = corrupt::Corruption::RelabelHalf { edge: e, side, dir };
                if !corrupt::is_effective(&b, &c) {
                    continue;
                }
                tested += 1;
                let (g, input) = corrupt::apply(&b, &c);
                let out = fam.verify(&g, &input, g.node_count());
                assert!(!out.all_ok(), "relabel {e}/{side:?}→{dir} not caught");
                let violations = check_psi(&g, &input, &out.output, 2);
                assert!(violations.is_empty(), "{e}/{side:?}→{dir}: {violations:?}");
            }
        }
    }
    assert!(tested > 100, "exhaustive sweep actually ran ({tested} cases)");
}
