//! End-to-end smoke tests for `results verify`: the CLI gate must accept
//! a faithfully persisted scenario run, reject seeded corruptions with a
//! nonzero exit and the right violation kind, and still verify manifests
//! written before the `meta` field existed (slug-parsing fallback).

use lcl_bench::CliOpts;
use lcl_report::RunManifest;
use lcl_scenario::{experiment_name, run_spec, AlgoSpec, FamilySpec, ScenarioSpec};
use std::path::{Path, PathBuf};
use std::process::Command;

fn smoke_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "verify-smoke".into(),
        description: "results-verify fixture".into(),
        families: vec![FamilySpec::Torus, FamilySpec::Caterpillar { leaf_frac: 0.4 }],
        sizes: vec![16],
        seeds: vec![1, 2],
        algos: vec![AlgoSpec::Luby, AlgoSpec::Linial],
    }
}

/// Persists one sequential run of the fixture spec under `root` and
/// returns its run directory.
fn persist_run(root: &Path, run_id: &str) -> PathBuf {
    let spec = smoke_spec();
    spec.validate().unwrap();
    let mut opts = CliOpts::from_args(vec!["--seq".to_string()]);
    opts.out = root.to_path_buf();
    opts.run_id = Some(run_id.to_string());
    let (report, failures) = run_spec(&spec, &opts);
    assert!(failures.is_empty(), "{failures:?}");
    report.persist(&experiment_name(&spec), &opts).expect("run persists")
}

fn results(root: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_results"))
        .arg("--out")
        .arg(root)
        .args(args)
        .output()
        .expect("results bin runs")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcl-results-verify-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn verify_certifies_a_faithful_run() {
    let root = temp_store("ok");
    persist_run(&root, "t1");
    let out = results(&root, &["verify", "t1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("verdict      certified"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn verify_rejects_a_corrupted_measured_value() {
    let root = temp_store("tamper");
    let dir = persist_run(&root, "t1");
    // Flip one measured value in rows.jsonl behind the manifest's back.
    let rows_path = dir.join("rows.jsonl");
    let text = std::fs::read_to_string(&rows_path).unwrap();
    let tampered = text.replacen("\"measured\":", "\"measured\":9", 1);
    assert_ne!(tampered, text);
    std::fs::write(&rows_path, tampered).unwrap();
    let out = results(&root, &["verify", "t1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("measured-mismatch"), "{stdout}");
    assert!(stdout.contains("REJECTED"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn verify_rejects_a_tampered_manifest() {
    let root = temp_store("manifest");
    let dir = persist_run(&root, "t1");
    let path = dir.join("manifest.json");
    let mut m: RunManifest =
        serde_json::from_str(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
    m.row_count += 1;
    std::fs::write(&path, serde_json::to_string(&m).unwrap() + "\n").unwrap();
    let out = results(&root, &["verify", "t1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("manifest-integrity"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn verify_handles_pre_meta_manifests_via_slug_fallback() {
    let root = temp_store("legacy");
    let dir = persist_run(&root, "t1");
    // Rewrite the manifest as a pre-meta producer would have: no meta
    // key at all — verify must fall back to parsing the series slugs.
    let path = dir.join("manifest.json");
    let mut m: RunManifest =
        serde_json::from_str(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
    m.meta.clear();
    let legacy = serde_json::to_string(&m).unwrap().replace(",\"meta\":[]", "");
    assert!(!legacy.contains("meta"), "meta key must be absent");
    std::fs::write(&path, legacy + "\n").unwrap();
    let out = results(&root, &["verify", "t1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict      certified"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn verify_of_a_missing_run_cannot_verify() {
    let root = temp_store("missing");
    let out = results(&root, &["verify", "no-such-run"]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&root);
}
