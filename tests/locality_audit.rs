//! Locality audits: the centralized simulations must behave like genuine
//! LOCAL algorithms — a node's output may depend only on its reported
//! view radius. We verify this operationally: mutate the graph strictly
//! outside a node's reported radius and check its decision is unchanged.

use lcl_algos::sinkless_det;
use lcl_core::problems::Orient;
use lcl_graph::{bfs_distances, gen, Graph, NodeId};
use lcl_local::{IdAssignment, Network};

/// The incident orientation profile of `v`: the labels of its half-edges
/// in port order.
fn profile(out: &lcl_core::Labeling<Orient>, g: &Graph, v: NodeId) -> Vec<Orient> {
    g.ports(v).iter().map(|&h| *out.half(h)).collect()
}

#[test]
fn det_sinkless_is_local_under_far_appendage() {
    // Append a far-away (disconnected) component: every original node's
    // ball is untouched, so no decision may move. Both runs announce the
    // same n (LOCAL algorithms receive n as global knowledge; holding it
    // fixed isolates the topology change).
    let g = gen::random_regular(128, 3, 3).expect("generable");
    let net = Network::new(g.clone(), IdAssignment::Sequential).with_known_n(256);
    let base = sinkless_det::run(&net, &sinkless_det::Params::default());

    let mut g2 = g.clone();
    g2.append(&gen::cycle(3));
    let mut ids: Vec<u64> = (1..=128u64).collect();
    ids.extend([1001, 1002, 1003]);
    let net2 = Network::with_ids(g2, ids).with_known_n(256);
    let mutant = sinkless_det::run(&net2, &sinkless_det::Params::default());

    for v in net.graph().nodes() {
        let r = base.trace.radii()[v.index()];
        assert_eq!(
            profile(&base.labeling, net.graph(), v),
            profile(&mutant.labeling, net2.graph(), v),
            "node {v:?} (radius {r}) changed its decision under a far mutation"
        );
    }
}

#[test]
fn det_sinkless_is_local_under_far_rewiring() {
    // Stronger: rewire edges *within* the graph but beyond the audited
    // node's reported radius; its decision must survive.
    let g = gen::random_regular(256, 3, 5).expect("generable");
    let net = Network::new(g.clone(), IdAssignment::Sequential).with_known_n(512);
    let base = sinkless_det::run(&net, &sinkless_det::Params::default());

    // Audit node 0.
    let v = NodeId(0);
    let r = base.trace.radii()[v.index()];
    let dist = bfs_distances(&g, v);

    // Find two disjoint far edges {a,b}, {c,d} (all endpoints beyond r+1)
    // and swap partners: {a,c}, {b,d}. Degrees are preserved.
    let far_edges: Vec<_> = g
        .edges()
        .filter(|&e| {
            let [a, b] = g.endpoints(e);
            let far = |x: NodeId| dist[x.index()].is_none_or(|d| d > r + 1);
            far(a) && far(b)
        })
        .collect();
    let mut chosen = None;
    'outer: for (i, &e1) in far_edges.iter().enumerate() {
        for &e2 in far_edges.iter().skip(i + 1) {
            let [a, b] = g.endpoints(e1);
            let [c, d] = g.endpoints(e2);
            let set = [a, b, c, d];
            let mut uniq = set.to_vec();
            uniq.sort();
            uniq.dedup();
            if uniq.len() == 4 {
                chosen = Some((e1, e2));
                break 'outer;
            }
        }
    }
    let Some((e1, e2)) = chosen else {
        // Graph too small for the audit radius: nothing beyond r+1.
        return;
    };

    // Rebuild the graph with the two edges swapped.
    let mut g2 = Graph::new();
    g2.add_nodes(g.node_count());
    for e in g.edges() {
        let [a, b] = g.endpoints(e);
        if e == e1 {
            let [c, _d] = g.endpoints(e2);
            g2.add_edge(a, c);
        } else if e == e2 {
            let [_a, b1] = g.endpoints(e1);
            let [_c, d] = g.endpoints(e2);
            g2.add_edge(b1, d);
        } else {
            g2.add_edge(a, b);
        }
    }
    let net2 = Network::new(g2, IdAssignment::Sequential).with_known_n(512);
    let mutant = sinkless_det::run(&net2, &sinkless_det::Params::default());
    assert_eq!(
        profile(&base.labeling, net.graph(), v),
        profile(&mutant.labeling, net2.graph(), v),
        "audited node {v:?} (radius {r}) changed under a beyond-radius rewiring"
    );
}

#[test]
fn verifier_is_local_on_valid_gadgets() {
    // A valid gadget's verification must not depend on what other
    // components exist: V run on a gadget alone equals V run on the
    // gadget plus far junk.
    use lcl_gadget::{GadgetFamily, LogGadgetFamily};
    let fam = LogGadgetFamily::new(3);
    let b = fam.balanced(100);
    let solo = fam.verify(&b.graph, &b.input, 500);

    // Add an isolated mislabeled node (its own broken component).
    let mut g2 = b.graph.clone();
    g2.add_node();
    let input2 = lcl_core::Labeling::build(
        &g2,
        |v| {
            if v.index() < b.graph.node_count() {
                *b.input.node(v)
            } else {
                lcl_gadget::GadgetIn::Node {
                    kind: lcl_gadget::NodeKind::Tree { index: 1, port: false },
                    color: 9_999,
                }
            }
        },
        |e| *b.input.edge(e),
        |h| *b.input.half(h),
    );
    let both = fam.verify(&g2, &input2, 500);
    for v in b.graph.nodes() {
        assert_eq!(solo.output[v.index()], both.output[v.index()]);
    }
    // The junk node fails alone.
    assert!(both.output[b.graph.node_count()].is_error_label());
}
