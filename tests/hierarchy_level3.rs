//! Level 3 of the Theorem-11 hierarchy: `Π₃ = pad(pad(sinkless))`,
//! solved end to end by two nested applications of the Lemma-4 algorithm
//! and verified by the recursive `Π'` checker.

use lcl_local::{IdAssignment, Network};
use lcl_padding::check_padded;
use lcl_padding::hard::hard_pi3_instance;
use lcl_padding::hierarchy::{pi3_det, pi3_rand};

#[test]
fn pi3_det_end_to_end() {
    let inst = hard_pi3_instance(4_096, 3, 6, 1);
    let n = inst.graph.node_count();
    assert!(n >= 3_000, "level-3 instance materialized ({n} nodes)");
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 1 });
    let solver = pi3_det(3, 6);
    let run = solver.run(&net, &inst.input, 1);
    // The cost decomposes twice: V₃ + T₂·(D₃+1), with T₂ itself of the
    // form V₂ + T₁·(D₂+1).
    assert!(run.stats.v_radius > 0);
    assert!(run.stats.inner_rounds > run.stats.v_radius, "inner Π₂ cost dominates");
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(violations.is_empty(), "{:?}", &violations[..violations.len().min(5)]);
}

#[test]
fn pi3_rand_end_to_end() {
    let inst = hard_pi3_instance(4_096, 3, 6, 2);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 2 });
    let solver = pi3_rand(3, 6);
    let run = solver.run(&net, &inst.input, 9);
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(violations.is_empty(), "{:?}", &violations[..violations.len().min(5)]);
}

#[test]
fn pi3_level2_base_is_itself_checkable() {
    // The base graph of the level-3 instance is a level-2 padded graph
    // whose own input labeling must be well-formed.
    let inst = hard_pi3_instance(4_096, 3, 6, 3);
    // Base nodes of level 3 = nodes of the level-2 padded graph.
    assert!(inst.base.node_count() >= 60);
    assert!(inst.base.max_degree() <= 6);
    // Gadgets at level 3 wrap every level-2 node.
    assert_eq!(inst.centers.len(), inst.base.node_count());
}
