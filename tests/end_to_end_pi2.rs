//! End-to-end integration of the padding pipeline (Sections 3–5):
//! construction → solving → checking, plus adversarial mutations of
//! solutions that the Π' checker must localize.

use lcl_gadget::PsiOutput;
use lcl_local::{IdAssignment, Network};
use lcl_padding::hard::{corrupt_gadgets, hard_pi2_instance};
use lcl_padding::hierarchy::{pi2_det, pi2_rand};
use lcl_padding::{check_padded, PadOut, PortFlag};

#[test]
fn det_pipeline_on_hard_instance() {
    let inst = hard_pi2_instance(1_500, 3, 1);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 1 });
    let solver = pi2_det(3);
    let run = solver.run(&net, &inst.input, 1);
    assert!(check_padded(&solver.problem, net.graph(), &inst.input, &run.output).is_empty());
    assert_eq!(run.stats.virtual_nodes, inst.base.node_count());
    assert_eq!(run.stats.invalid_gadgets, 0);
    // Lemma 4 cost decomposition is consistent.
    assert_eq!(
        run.stats.physical_rounds(),
        run.stats.v_radius + run.stats.inner_rounds * (run.stats.gadget_diameter + 1)
    );
}

#[test]
fn rand_pipeline_on_hard_instance() {
    let inst = hard_pi2_instance(1_500, 3, 2);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 2 });
    let solver = pi2_rand(3);
    let run = solver.run(&net, &inst.input, 5);
    assert!(check_padded(&solver.problem, net.graph(), &inst.input, &run.output).is_empty());
}

#[test]
fn pipeline_with_invalid_gadgets() {
    // Section 3.3: invalid gadgets become "don't care" regions; the solver
    // must still produce a globally checkable solution, with PortErr1 at
    // ports facing the corruption.
    let mut inst = hard_pi2_instance(1_500, 3, 3);
    corrupt_gadgets(&mut inst, &[0, 1], 3);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 3 });
    let solver = pi2_det(3);
    let run = solver.run(&net, &inst.input, 3);
    assert_eq!(run.stats.invalid_gadgets, 2);
    assert_eq!(run.stats.virtual_nodes, inst.base.node_count() - 2);
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(violations.is_empty(), "{violations:?}");
    // Ports facing the corrupted gadgets carry PortErr1.
    let err1 = net
        .graph()
        .nodes()
        .filter(|&v| matches!(run.output.node(v), PadOut::Node(o) if o.flag == PortFlag::PortErr1))
        .count();
    assert!(err1 >= 3, "each corrupted gadget silences its neighbors' ports: {err1}");
}

#[test]
fn checker_catches_forged_gadok() {
    // An algorithm must not claim a corrupted gadget is fine (the
    // "cannot cheat" property of Section 3.3).
    let mut inst = hard_pi2_instance(1_200, 3, 4);
    corrupt_gadgets(&mut inst, &[0], 4);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 4 });
    let solver = pi2_det(3);
    let mut run = solver.run(&net, &inst.input, 4);
    // Forge: flip every psi output of the corrupted gadget to Ok.
    for v in net.graph().nodes() {
        if inst.gadget_of[v.index()] == 0 {
            if let PadOut::Node(o) = run.output.node_mut(v) {
                o.psi = PsiOutput::Ok;
            }
        }
    }
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(!violations.is_empty(), "forged GadOk must be rejected");
}

#[test]
fn checker_catches_wrong_virtual_solution() {
    // Corrupt the virtual orientation inside Σ_list: flip one port's o_b
    // entry; either constraint 5d (a virtual sink) or constraint 6
    // (half-edges no longer complementary) must fire.
    let inst = hard_pi2_instance(1_200, 3, 5);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 5 });
    let solver = pi2_det(3);
    let mut run = solver.run(&net, &inst.input, 5);
    use lcl_core::problems::Orient;
    // Find a gadget and flip every node's o_b[0] in that gadget (the list
    // must stay gadget-uniform or constraint 6 fires on GadEdges, which
    // would also be a catch but a less interesting one).
    let target = 0u32;
    for v in net.graph().nodes() {
        if inst.gadget_of[v.index()] == target {
            if let PadOut::Node(o) = run.output.node_mut(v) {
                if o.list.s[0] {
                    o.list.o_b[0] = match o.list.o_b[0] {
                        Orient::Out => Orient::In,
                        _ => Orient::Out,
                    };
                }
            }
        }
    }
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(!violations.is_empty(), "flipped virtual half must be rejected");
}

#[test]
fn checker_catches_inconsistent_lists() {
    // Constraint 6 (GadEdge): all nodes of a gadget share Σ_list.
    let inst = hard_pi2_instance(1_200, 3, 6);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 6 });
    let solver = pi2_det(3);
    let mut run = solver.run(&net, &inst.input, 6);
    // On a fully valid hard instance every port is in S; drop one entry at
    // a single node so its Σ_list disagrees with its gadget-mates'.
    let victim = net.graph().nodes().next().unwrap();
    if let PadOut::Node(o) = run.output.node_mut(victim) {
        assert_eq!(o.list.s, vec![true; 3], "hard instances use every port");
        o.list.s[0] = false;
    }
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(
        violations.iter().any(|v| v.to_string().contains("6:") || v.to_string().contains("5a")),
        "{violations:?}"
    );
}

#[test]
fn checker_catches_wrong_port_flags() {
    let inst = hard_pi2_instance(1_200, 3, 7);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 7 });
    let solver = pi2_det(3);
    let mut run = solver.run(&net, &inst.input, 7);
    // Claim PortErr2 at a perfectly wired port.
    let port = inst.ports[0][0];
    if let PadOut::Node(o) = run.output.node_mut(port) {
        o.flag = PortFlag::PortErr2;
    }
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(violations.iter().any(|v| v.to_string().contains("3:")));
}

#[test]
fn checker_catches_eps_misplacement() {
    let inst = hard_pi2_instance(1_200, 3, 8);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 8 });
    let solver = pi2_det(3);
    let mut run = solver.run(&net, &inst.input, 8);
    // Write GadPad on a PortEdge.
    let pe = inst.port_edge_of[0];
    *run.output.edge_mut(pe) = PadOut::GadPad;
    let violations = check_padded(&solver.problem, net.graph(), &inst.input, &run.output);
    assert!(violations.iter().any(|v| v.to_string().contains("1:")));
}

#[test]
fn solver_is_reproducible() {
    let inst = hard_pi2_instance(1_200, 3, 9);
    let net = Network::new(inst.graph.clone(), IdAssignment::Shuffled { seed: 9 });
    let solver = pi2_rand(3);
    let a = solver.run(&net, &inst.input, 33);
    let b = solver.run(&net, &inst.input, 33);
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats, b.stats);
}
