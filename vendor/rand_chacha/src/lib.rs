//! Vendored ChaCha-based RNG for the offline build (see `vendor/rand`).
//!
//! Implements the genuine ChaCha8 stream cipher core (32-bit words, 64-byte
//! blocks, 8 rounds = 4 double-rounds) in counter mode. The keystream does **not** match the upstream
//! `rand_chacha` crate word-for-word (upstream has its own word-ordering
//! conventions), but it is a full-strength counter-mode generator: every
//! `(seed, counter)` pair yields an independent-looking 512-bit block, which
//! is the property the LOCAL-model simulator's per-node streams rely on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8 counter-mode RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key schedule: constants ‖ 256-bit key ‖ 64-bit counter ‖ 64-bit nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit block counter (words 12–13).
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([seed[4 * i], seed[4 * i + 1], seed[4 * i + 2], seed[4 * i + 3]]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same == 0, "streams should diverge immediately");
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "counter must advance between blocks");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
