//! Vendored, dependency-free serialization shim (see `vendor/rand` for why).
//!
//! Unlike real `serde` this is not a zero-copy visitor framework: values
//! serialize into an owned [`Value`] tree and deserialize back out of one.
//! The `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` shim) cover the shapes this workspace uses — named
//! structs, tuple/newtype structs, unit structs, and enums with unit,
//! newtype, tuple, and struct variants — with the same JSON data mapping as
//! real serde, so `serde_json` output looks conventional
//! (`{"field":1}`, `"UnitVariant"`, `{"DataVariant":{…}}`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the shim's entire data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also unit structs and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer (only produced for negative values).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum wrappers).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field in a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }

    /// Interprets the value as a sequence of exactly `n` elements.
    pub fn seq_n(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => {
                Err(DeError::new(format!("expected {n} elements, got {}", items.len())))
            }
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x < 0 { Value::Int(x) } else { Value::UInt(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, got {other:?}"))),
        }
    }
}

// --- references and containers ------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.seq_n(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| DeError::new("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.seq_n(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let kv = pair.seq_n(2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(DeError::new(format!("expected sequence of pairs, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-5i32).to_value()), Ok(-5));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
        assert_eq!(<(u8, bool)>::from_value(&(3u8, true).to_value()), Ok((3, true)));
        assert_eq!(<[u8; 2]>::from_value(&[1u8, 2].to_value()), Ok([1, 2]));
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2].to_value()), Ok(vec![1, 2]));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
