//! Vendored, dependency-free serialization shim (see `vendor/rand` for why).
//!
//! Unlike real `serde` this is not a zero-copy visitor framework: values
//! serialize into an owned [`Value`] tree and deserialize back out of one.
//! The `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` shim) cover the shapes this workspace uses — named
//! structs, tuple/newtype structs, unit structs, and enums with unit,
//! newtype, tuple, and struct variants — with the same JSON data mapping as
//! real serde, so `serde_json` output looks conventional
//! (`{"field":1}`, `"UnitVariant"`, `{"DataVariant":{…}}`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the shim's entire data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also unit structs and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer (only produced for negative values).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum wrappers).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field in a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }

    /// Interprets the value as a sequence of exactly `n` elements.
    pub fn seq_n(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => {
                Err(DeError::new(format!("expected {n} elements, got {}", items.len())))
            }
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A streaming serialization sink: receives the flat token sequence of a
/// value instead of an owned [`Value`] tree. `serde_json` implements this
/// over an `io::Write` so large reports serialize without any intermediate
/// allocation.
///
/// Protocol: sequences are `seq_begin`, then `seq_elem` before **every**
/// element (including the first), then `seq_end`; maps are `map_begin`,
/// then `map_key` before every value, then `map_end`. The sink owns
/// separator bookkeeping, so emitters stay branch-free.
pub trait Sink {
    /// Emits `null` (unit, `None`, non-value positions).
    fn null(&mut self);
    /// Emits a boolean.
    fn boolean(&mut self, x: bool);
    /// Emits an unsigned integer.
    fn uint(&mut self, x: u64);
    /// Emits a signed (negative) integer.
    fn int(&mut self, x: i64);
    /// Emits a float.
    fn float(&mut self, x: f64);
    /// Emits a string.
    fn text(&mut self, s: &str);
    /// Opens a sequence.
    fn seq_begin(&mut self);
    /// Announces the next sequence element.
    fn seq_elem(&mut self);
    /// Closes a sequence.
    fn seq_end(&mut self);
    /// Opens a map.
    fn map_begin(&mut self);
    /// Announces the next map entry and emits its key.
    fn map_key(&mut self, key: &str);
    /// Closes a map.
    fn map_end(&mut self);
}

/// Streams an already-built [`Value`] tree into a sink — the bridge that
/// lets [`Serialize::stream`]'s default implementation work for types
/// that only provide [`Serialize::to_value`].
pub fn stream_value(v: &Value, sink: &mut dyn Sink) {
    match v {
        Value::Null => sink.null(),
        Value::Bool(x) => sink.boolean(*x),
        Value::UInt(x) => sink.uint(*x),
        Value::Int(x) => sink.int(*x),
        Value::Float(x) => sink.float(*x),
        Value::Str(s) => sink.text(s),
        Value::Seq(items) => {
            sink.seq_begin();
            for item in items {
                sink.seq_elem();
                stream_value(item, sink);
            }
            sink.seq_end();
        }
        Value::Map(entries) => {
            sink.map_begin();
            for (k, val) in entries {
                sink.map_key(k);
                stream_value(val, sink);
            }
            sink.map_end();
        }
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;

    /// Streams `self` into a [`Sink`] without building a [`Value`] tree.
    ///
    /// The default routes through [`Serialize::to_value`]; the primitive
    /// and container impls in this crate — and every
    /// `#[derive(Serialize)]` impl — override it with direct streaming,
    /// so derived types serialize allocation-free end to end. Both paths
    /// must produce the same token sequence.
    fn stream(&self, sink: &mut dyn Sink) {
        stream_value(&self.to_value(), sink);
    }
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
            fn stream(&self, sink: &mut dyn Sink) { sink.uint(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x < 0 { Value::Int(x) } else { Value::UInt(x as u64) }
            }
            fn stream(&self, sink: &mut dyn Sink) {
                let x = *self as i64;
                if x < 0 { sink.int(x) } else { sink.uint(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.float(*self);
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.float(f64::from(*self));
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.boolean(*self);
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.text(self);
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.text(self);
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.text(self.encode_utf8(&mut [0u8; 4]));
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.null();
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, got {other:?}"))),
        }
    }
}

// --- references and containers ------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn stream(&self, sink: &mut dyn Sink) {
        (**self).stream(sink);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
    fn stream(&self, sink: &mut dyn Sink) {
        match self {
            Some(x) => x.stream(sink),
            None => sink.null(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.seq_begin();
        for item in self {
            sink.seq_elem();
            item.stream(sink);
        }
        sink.seq_end();
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.seq_begin();
        for item in self {
            sink.seq_elem();
            item.stream(sink);
        }
        sink.seq_end();
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.seq_n(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| DeError::new("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
            fn stream(&self, sink: &mut dyn Sink) {
                sink.seq_begin();
                $(
                    sink.seq_elem();
                    self.$idx.stream(sink);
                )+
                sink.seq_end();
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.seq_n(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.seq_begin();
        for (k, v) in self {
            sink.seq_elem();
            sink.seq_begin();
            sink.seq_elem();
            k.stream(sink);
            sink.seq_elem();
            v.stream(sink);
            sink.seq_end();
        }
        sink.seq_end();
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let kv = pair.seq_n(2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(DeError::new(format!("expected sequence of pairs, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-5i32).to_value()), Ok(-5));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
        assert_eq!(<(u8, bool)>::from_value(&(3u8, true).to_value()), Ok((3, true)));
        assert_eq!(<[u8; 2]>::from_value(&[1u8, 2].to_value()), Ok([1, 2]));
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2].to_value()), Ok(vec![1, 2]));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    /// Token recorder: the reference sink for equivalence tests.
    #[derive(Debug, Default, PartialEq)]
    struct Tokens(Vec<String>);

    impl Sink for Tokens {
        fn null(&mut self) {
            self.0.push("null".into());
        }
        fn boolean(&mut self, x: bool) {
            self.0.push(format!("bool:{x}"));
        }
        fn uint(&mut self, x: u64) {
            self.0.push(format!("uint:{x}"));
        }
        fn int(&mut self, x: i64) {
            self.0.push(format!("int:{x}"));
        }
        fn float(&mut self, x: f64) {
            self.0.push(format!("float:{x:?}"));
        }
        fn text(&mut self, s: &str) {
            self.0.push(format!("text:{s}"));
        }
        fn seq_begin(&mut self) {
            self.0.push("[".into());
        }
        fn seq_elem(&mut self) {
            self.0.push(",".into());
        }
        fn seq_end(&mut self) {
            self.0.push("]".into());
        }
        fn map_begin(&mut self) {
            self.0.push("{".into());
        }
        fn map_key(&mut self, key: &str) {
            self.0.push(format!("key:{key}"));
        }
        fn map_end(&mut self) {
            self.0.push("}".into());
        }
    }

    #[test]
    fn streaming_matches_value_tree_tokens() {
        // Every overridden `stream` impl must emit exactly the tokens the
        // default (via `to_value` + `stream_value`) would.
        fn both<T: Serialize>(x: &T) -> (Tokens, Tokens) {
            let mut direct = Tokens::default();
            x.stream(&mut direct);
            let mut via_tree = Tokens::default();
            stream_value(&x.to_value(), &mut via_tree);
            (direct, via_tree)
        }
        let samples: Vec<Box<dyn Fn() -> (Tokens, Tokens)>> = vec![
            Box::new(|| both(&42u64)),
            Box::new(|| both(&-7i32)),
            Box::new(|| both(&7i32)),
            Box::new(|| both(&1.5f64)),
            Box::new(|| both(&f64::NAN)),
            Box::new(|| both(&true)),
            Box::new(|| both(&'ß')),
            Box::new(|| both(&"hi\n".to_string())),
            Box::new(|| both(&())),
            Box::new(|| both(&Some(3u8))),
            Box::new(|| both(&Option::<u8>::None)),
            Box::new(|| both(&vec![1u32, 2, 3])),
            Box::new(|| both(&[1u8, 2])),
            Box::new(|| both(&(1u8, "x".to_string(), 2.5f32))),
            Box::new(|| {
                let m: std::collections::BTreeMap<String, u32> =
                    [("a".to_string(), 1u32), ("b".to_string(), 2)].into_iter().collect();
                both(&m)
            }),
        ];
        for sample in samples {
            let (direct, via_tree) = sample();
            assert_eq!(direct, via_tree);
        }
    }
}
