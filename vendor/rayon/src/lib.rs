//! Vendored data-parallelism shim (see `vendor/rand` for why).
//!
//! Implements the slice of the `rayon` API the experiment engine uses:
//! `par_iter()` on slices, `into_par_iter()` on `Vec` and `Range<usize>`,
//! `.map(...)` and order-preserving `.collect()` / `.for_each(...)`, plus
//! [`current_num_threads`]. Work is split into contiguous chunks across
//! `std::thread::scope` threads; results are written back by index, so
//! collection order always equals input order regardless of scheduling —
//! the property the deterministic batch runner relies on.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads the shim will use (the available parallelism).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Executes `f(i)` for every index, fanning chunks across threads, and
/// returns the results in index order.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(t * chunk + off));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("worker filled every slot")).collect()
}

/// A parallel iterator: an exact-size source plus an element function.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Number of elements.
    fn par_len(&self) -> usize;

    /// Produces the `i`-th element.
    fn at(&self, i: usize) -> Self::Item;

    /// Maps elements through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> MapIter<Self, F> {
        MapIter { base: self, f }
    }

    /// Runs the pipeline, collecting results in input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C
    where
        Self: Sync,
    {
        C::from(run_indexed(self.par_len(), |i| self.at(i)))
    }

    /// Runs the pipeline for its side effects.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self: Sync,
    {
        run_indexed(self.par_len(), |i| f(self.at(i)));
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn at(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

/// Parallel iterator over an owned `Vec<T>` (elements are cloned out per
/// index — the shim favors simplicity over zero-copy moves).
#[derive(Debug)]
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn at(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

/// Parallel iterator over `Range<usize>`.
#[derive(Debug)]
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// See [`ParallelIterator::map`].
#[derive(Debug)]
pub struct MapIter<S, F> {
    base: S,
    f: F,
}

impl<S: ParallelIterator, R: Send, F: Fn(S::Item) -> R + Sync> ParallelIterator for MapIter<S, F> {
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> R {
        (self.f)(self.base.at(i))
    }
}

/// Mutable parallel iterator over `&mut [T]` (supports only the
/// `.enumerate().for_each(...)` pipeline the workspace uses).
#[derive(Debug)]
pub struct SliceIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Pairs each element with its index.
    #[must_use]
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { items: self.items }
    }
}

/// See [`SliceIterMut::enumerate`].
#[derive(Debug)]
pub struct EnumerateMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Applies `f` to every `(index, &mut element)` pair, in parallel over
    /// contiguous chunks.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        let len = self.items.len();
        if len == 0 {
            return;
        }
        let threads = current_num_threads().min(len);
        if threads <= 1 {
            for (i, item) in self.items.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let chunk = len.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, item_chunk) in self.items.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (off, item) in item_chunk.iter_mut().enumerate() {
                        f((t * chunk + off, item));
                    }
                });
            }
        });
    }
}

/// Types with a mutable by-reference parallel iterator.
pub trait IntoParallelRefMutIterator<'a> {
    /// The iterator type.
    type Iter;

    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { items: self }
    }
}

/// Types with a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type.
    type Iter: ParallelIterator;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The iterator type.
    type Iter: ParallelIterator;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..37).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 37);
        assert_eq!(squares[6], 36);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        (0..0).into_par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn par_iter_mut_enumerate_for_each() {
        let mut items: Vec<u64> = vec![0; 300];
        items.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64 * 3);
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..128).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 128);
    }
}
