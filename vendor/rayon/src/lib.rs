//! Vendored data-parallelism shim (see `vendor/rand` for why).
//!
//! Implements the slice of the `rayon` API the experiment engine uses:
//! `par_iter()` on slices, `into_par_iter()` on `Vec` and `Range<usize>`,
//! `.map(...)` / `.map_init(...)` and order-preserving `.collect()` /
//! `.for_each(...)`, plus [`current_num_threads`]. Work is split into
//! contiguous chunks dispatched to a **persistent worker pool** (spawned
//! lazily on first use, pinnable via `LCL_POOL_THREADS`); results are
//! written back by index, so collection order always equals input order
//! regardless of scheduling — the property the deterministic batch runner
//! relies on.
//!
//! The pool replaces the previous `std::thread::scope`-per-call design:
//! fine-grained per-node workloads (the LOCAL simulator dispatches one job
//! per graph node) no longer pay thread spawn/join cost on every call.

#![deny(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::Mutex;

mod pool;

/// Number of worker threads the shim will use: the value of the
/// `LCL_POOL_THREADS` environment variable if set (read once, at pool
/// creation), otherwise the available parallelism. This counts the
/// submitting thread: a job is executed by the submitter plus
/// `current_num_threads() - 1` pool workers.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::global().threads()
}

/// Executes `f(i)` for every index, fanning chunks across the pool, and
/// returns the results in index order.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_init(len, &|| (), &|(), i| f(i))
}

/// [`run_indexed`] with a per-worker scratch value: every chunk of indices
/// is processed with a fresh `init()` value threaded through `f`. Callers
/// must not let the scratch influence results (it is a cache/arena, not
/// semantic state) — chunk boundaries depend on the pool size.
fn run_indexed_init<S, R, I, F>(len: usize, init: &I, f: &F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if current_num_threads().min(len) <= 1 {
        let mut scratch = init();
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    run_chunked_slices(&mut slots, &|base, chunk: &mut [Option<R>]| {
        let mut scratch = init();
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(&mut scratch, base + off));
        }
    });
    slots.into_iter().map(|s| s.expect("worker filled every slot")).collect()
}

/// Splits `items` into one contiguous chunk per participating thread and
/// runs `g(base_index, chunk)` across the pool. One uncontended mutex per
/// chunk hands each worker exclusive, safe access to its slice — the
/// single dispatch path shared by indexed collection and mutable
/// iteration, so chunk sizing and the lock protocol cannot diverge.
fn run_chunked_slices<T, G>(items: &mut [T], g: &G)
where
    T: Send,
    G: Fn(usize, &mut [T]) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        g(0, items);
        return;
    }
    let chunk = len.div_ceil(threads);
    let chunk_slots: Vec<Mutex<&mut [T]>> = items.chunks_mut(chunk).map(Mutex::new).collect();
    pool::run_chunks(chunk_slots.len(), &|ci: usize| {
        let mut guard = chunk_slots[ci].lock().expect("chunk slot lock");
        g(ci * chunk, &mut guard[..]);
    });
}

/// A parallel iterator: an exact-size source plus an element function.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Number of elements.
    fn par_len(&self) -> usize;

    /// Produces the `i`-th element.
    fn at(&self, i: usize) -> Self::Item;

    /// Maps elements through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> MapIter<Self, F> {
        MapIter { base: self, f }
    }

    /// Maps elements through `f` with a per-worker scratch value created by
    /// `init` (mirrors rayon's `map_init`). The scratch must not influence
    /// results — chunking is a scheduling detail.
    fn map_init<S, R, I, F>(self, init: I, f: F) -> MapInitIter<Self, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
    {
        MapInitIter { base: self, init, f }
    }

    /// Runs the pipeline, collecting results in input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C
    where
        Self: Sync,
    {
        C::from(run_indexed(self.par_len(), |i| self.at(i)))
    }

    /// Runs the pipeline for its side effects.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self: Sync,
    {
        run_indexed(self.par_len(), |i| f(self.at(i)));
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn at(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

/// Parallel iterator over an owned `Vec<T>` (elements are cloned out per
/// index — the shim favors simplicity over zero-copy moves).
#[derive(Debug)]
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn at(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

/// Parallel iterator over `Range<usize>`.
#[derive(Debug)]
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// See [`ParallelIterator::map`].
#[derive(Debug)]
pub struct MapIter<S, F> {
    base: S,
    f: F,
}

impl<S: ParallelIterator, R: Send, F: Fn(S::Item) -> R + Sync> ParallelIterator for MapIter<S, F> {
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> R {
        (self.f)(self.base.at(i))
    }
}

/// See [`ParallelIterator::map_init`]. Unlike plain [`MapIter`] this is a
/// pipeline *terminator* (it only offers `collect` / `for_each`): per-chunk
/// scratch cannot be expressed through the indexed `at(i)` protocol.
#[derive(Debug)]
pub struct MapInitIter<B, I, F> {
    base: B,
    init: I,
    f: F,
}

impl<B, I, F> MapInitIter<B, I, F> {
    /// Runs the pipeline, collecting results in input order. Each worker
    /// chunk gets a fresh `init()` scratch.
    pub fn collect<S, R, C>(self) -> C
    where
        B: ParallelIterator + Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, B::Item) -> R + Sync,
        C: From<Vec<R>>,
    {
        let base = &self.base;
        let f = &self.f;
        C::from(run_indexed_init(base.par_len(), &self.init, &|s: &mut S, i| f(s, base.at(i))))
    }
}

/// Mutable parallel iterator over `&mut [T]` (supports only the
/// `.enumerate().for_each(...)` pipeline the workspace uses).
#[derive(Debug)]
pub struct SliceIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Pairs each element with its index.
    #[must_use]
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { items: self.items }
    }
}

/// See [`SliceIterMut::enumerate`].
#[derive(Debug)]
pub struct EnumerateMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Applies `f` to every `(index, &mut element)` pair, in parallel over
    /// contiguous chunks.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        run_chunked_slices(self.items, &|base, chunk: &mut [T]| {
            for (off, item) in chunk.iter_mut().enumerate() {
                f((base + off, item));
            }
        });
    }
}

/// Types with a mutable by-reference parallel iterator.
pub trait IntoParallelRefMutIterator<'a> {
    /// The iterator type.
    type Iter;

    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { items: self }
    }
}

/// Types with a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type.
    type Iter: ParallelIterator;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The iterator type.
    type Iter: ParallelIterator;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

/// The parallelism the host advertises (used as the pool-size default).
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..37).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 37);
        assert_eq!(squares[6], 36);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        (0..0).into_par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn par_iter_mut_enumerate_for_each() {
        let mut items: Vec<u64> = vec![0; 300];
        items.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64 * 3);
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..128).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn map_init_matches_map() {
        let plain: Vec<usize> = (0..500).into_par_iter().map(|i| i * 3).collect();
        let with_scratch: Vec<usize> = (0..500)
            .into_par_iter()
            .map_init(
                || 0usize,
                |calls, i| {
                    *calls += 1; // per-chunk scratch is reused, never observed
                    i * 3
                },
            )
            .collect();
        assert_eq!(plain, with_scratch);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let out: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..64).into_par_iter().map(|j| i * 1000 + j).collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<usize> =
            (0..8).map(|i| (0..64).map(|j| i * 1000 + j).sum::<usize>()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panics_propagate_to_caller() {
        let res = std::panic::catch_unwind(|| {
            (0..256).into_par_iter().for_each(|i| {
                assert!(i != 137, "boom at {i}");
            });
        });
        assert!(res.is_err(), "panic inside a parallel job must reach the caller");
        // The pool must still be usable afterwards.
        let sum: Vec<usize> = (0..64).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(sum.iter().sum::<usize>(), 64 * 65 / 2);
    }

    #[test]
    fn repeated_jobs_reuse_the_pool() {
        for round in 0..50 {
            let v: Vec<usize> = (0..97).into_par_iter().map(|i| i + round).collect();
            assert_eq!(v[0], round);
            assert_eq!(v[96], 96 + round);
        }
    }
}
