//! The persistent worker pool behind the shim's parallel iterators.
//!
//! A single global pool is spawned lazily on first use and lives for the
//! rest of the process. Jobs are *chunked*: the submitter splits its work
//! into `chunks` contiguous pieces and every participant — pool workers
//! plus the submitting thread itself — claims chunk indices from a shared
//! atomic counter until none remain. The submitter always participates, so
//! a job makes progress even when every worker is busy; nested submissions
//! (a job submitting sub-jobs) therefore cannot deadlock: a claimed chunk
//! is, by construction, being actively executed by some thread.
//!
//! Panics inside a chunk are caught, carried across the pool, and resumed
//! on the submitting thread, mirroring `std::thread::scope` semantics.
//!
//! This module contains the shim's only `unsafe` code: a type-erased
//! pointer to the submitter's chunk closure travels to the workers.
//!
//! # Safety argument
//!
//! [`run_chunks`] does not return until `state.done == chunks`, and a chunk
//! is only counted done *after* its closure call returns. Hence every
//! dereference of the erased pointer happens while the submitting frame
//! (which owns the closure and everything it borrows) is alive and blocked.
//! Workers that pop a job envelope after all chunks were claimed observe
//! `next >= chunks` and never touch the pointer; the envelope itself is an
//! `Arc`, so late pops are memory-safe.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Type-erased `&F where F: Fn(usize) + Sync`, valid for the job's life.
struct ErasedFn {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is `Sync` (bound enforced by `run_chunks`) and is
// kept alive by the blocked submitter for as long as workers may call it.
unsafe impl Send for ErasedFn {}
unsafe impl Sync for ErasedFn {}

/// Calls the erased closure.
///
/// # Safety
///
/// `data` must point to a live `F` for the duration of the call.
unsafe fn call_erased<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
    (*data.cast::<F>())(chunk);
}

/// One submitted job: a closure plus chunk-claiming and completion state.
struct Job {
    f: ErasedFn,
    chunks: usize,
    /// Next chunk index to claim (values `>= chunks` mean "none left").
    next: AtomicUsize,
    state: Mutex<JobState>,
    finished: Condvar,
}

struct JobState {
    done: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Claims and executes chunks of `job` until none remain.
fn work_on(job: &Job) {
    loop {
        let chunk = job.next.fetch_add(1, Ordering::Relaxed);
        if chunk >= job.chunks {
            return;
        }
        // SAFETY: `chunk < chunks` was claimed exclusively, so the job is
        // not yet complete and the submitter is keeping the closure alive
        // (see the module-level safety argument).
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.f.call)(job.f.data, chunk);
        }));
        let mut state = job.state.lock().expect("job state lock");
        if let Err(payload) = result {
            if state.panic.is_none() {
                state.panic = Some(payload);
            }
        }
        state.done += 1;
        if state.done == job.chunks {
            job.finished.notify_all();
        }
    }
}

/// Queue shared between the submitters and the worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    ready: Condvar,
}

/// The lazily spawned global pool.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    threads: usize,
}

impl Pool {
    /// Total parallelism: pool workers plus the submitting thread.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.ready.wait(queue).expect("pool queue wait");
            }
        };
        work_on(&job);
    }
}

/// Pool size: `LCL_POOL_THREADS` if set to a positive integer (the pinning
/// knob the determinism CI leg uses), otherwise the available parallelism.
fn pool_threads() -> usize {
    std::env::var("LCL_POOL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(crate::available_parallelism)
}

/// The global pool, spawning `threads - 1` workers on first use.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = pool_threads();
        let shared =
            Arc::new(PoolShared { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() });
        for i in 0..threads.saturating_sub(1) {
            let worker_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("lcl-pool-{i}"))
                .spawn(move || worker_loop(&worker_shared))
                .expect("spawn pool worker");
        }
        Pool { shared, threads }
    })
}

/// Executes `f(0), …, f(chunks - 1)` across the pool, returning when every
/// chunk has finished. The calling thread participates, so completion never
/// depends on worker availability. Panics inside `f` are re-raised here.
pub(crate) fn run_chunks<F: Fn(usize) + Sync>(chunks: usize, f: &F) {
    if chunks == 0 {
        return;
    }
    let pool = global();
    if chunks == 1 || pool.threads <= 1 {
        for chunk in 0..chunks {
            f(chunk);
        }
        return;
    }
    let job = Arc::new(Job {
        f: ErasedFn { data: (f as *const F).cast::<()>(), call: call_erased::<F> },
        chunks,
        next: AtomicUsize::new(0),
        state: Mutex::new(JobState { done: 0, panic: None }),
        finished: Condvar::new(),
    });
    // One envelope per helper that could usefully join in.
    let helpers = (pool.threads - 1).min(chunks - 1);
    {
        let mut queue = pool.shared.queue.lock().expect("pool queue lock");
        for _ in 0..helpers {
            queue.push_back(Arc::clone(&job));
        }
    }
    pool.shared.ready.notify_all();

    work_on(&job);

    let mut state = job.state.lock().expect("job state lock");
    while state.done < job.chunks {
        state = job.finished.wait(state).expect("job completion wait");
    }
    let panic = state.panic.take();
    drop(state);
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
}
