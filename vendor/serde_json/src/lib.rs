//! JSON text layer over the vendored serde shim.
//!
//! Provides [`to_string`] / [`to_writer`] / [`from_str`] with conventional
//! JSON output (compact separators, escaped strings, integers kept exact,
//! floats via Rust's shortest-roundtrip formatting, non-finite floats as
//! `null`).
//!
//! [`to_string`] and [`to_writer`] **stream**: they drive the value's
//! [`serde::Sink`] tokens straight into the output with no intermediate
//! [`Value`] tree. The historical tree-building path survives as
//! [`to_value_string`], kept as the baseline the streaming serializer is
//! benchmarked against (`lcl-bench/benches/serialize.rs`); both paths
//! produce byte-identical output.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Sink, Value};
use std::fmt::Write as _;
use std::io;

/// Error from serialization or deserialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to a compact JSON string through the streaming
/// serializer.
///
/// # Errors
///
/// Kept for API compatibility; writing to a string cannot fail.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    let mut sink = JsonSink::new(&mut out);
    value.stream(&mut sink);
    sink.finish().map_err(|e| Error(e.to_string()))?;
    Ok(String::from_utf8(out).expect("serializer emits UTF-8"))
}

/// Serializes a value as compact JSON directly into an [`io::Write`],
/// token by token — no intermediate [`Value`] tree, no output buffer.
/// This is the persistence path for `rows.jsonl` streams.
///
/// # Errors
///
/// Returns the first I/O error the writer reported.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let mut sink = JsonSink::new(&mut writer);
    value.stream(&mut sink);
    sink.finish().map_err(|e| Error(e.to_string()))
}

/// Serializes through the historical value-tree path: builds the full
/// [`Value`] and renders it. Byte-identical to [`to_string`]; kept as the
/// allocation-heavy baseline for the streaming serializer's benchmark.
///
/// # Errors
///
/// Kept for API compatibility; the shim's value tree always renders.
pub fn to_value_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Streaming JSON emitter: a [`serde::Sink`] over an [`io::Write`].
///
/// Separator state lives in a small bitset-like stack (`first`), so the
/// emitter needs no lookahead; I/O errors are latched and surfaced once by
/// [`JsonSink::finish`].
#[derive(Debug)]
pub struct JsonSink<W: io::Write> {
    writer: W,
    /// `true` while the innermost open container has not yet seen an
    /// element; one entry per nesting level.
    first: Vec<bool>,
    err: Option<io::Error>,
}

impl<W: io::Write> JsonSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonSink { writer, first: Vec::new(), err: None }
    }

    /// Consumes the sink, surfacing the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error the underlying writer reported.
    pub fn finish(self) -> io::Result<()> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        if self.err.is_none() {
            if let Err(e) = self.writer.write_all(bytes) {
                self.err = Some(e);
            }
        }
    }

    fn put_fmt(&mut self, args: std::fmt::Arguments<'_>) {
        if self.err.is_none() {
            if let Err(e) = self.writer.write_fmt(args) {
                self.err = Some(e);
            }
        }
    }

    /// Comma bookkeeping shared by `seq_elem` and `map_key`.
    fn separate(&mut self) {
        match self.first.last_mut() {
            Some(first @ true) => *first = false,
            Some(_) => self.put(b","),
            None => {}
        }
    }

    fn put_escaped(&mut self, s: &str) {
        self.put(b"\"");
        // Contiguous runs of plain characters are written in one call;
        // the escape table matches `render_string` byte for byte.
        let bytes = s.as_bytes();
        let mut run = 0;
        for (i, &b) in bytes.iter().enumerate() {
            let esc: Option<&[u8]> = match b {
                b'"' => Some(b"\\\""),
                b'\\' => Some(b"\\\\"),
                b'\n' => Some(b"\\n"),
                b'\r' => Some(b"\\r"),
                b'\t' => Some(b"\\t"),
                c if c < 0x20 => None, // \u escape, handled below
                _ => continue,
            };
            self.put(&bytes[run..i]);
            run = i + 1;
            match esc {
                Some(e) => self.put(e),
                None => self.put_fmt(format_args!("\\u{:04x}", b)),
            }
        }
        self.put(&bytes[run..]);
        self.put(b"\"");
    }
}

impl<W: io::Write> Sink for JsonSink<W> {
    fn null(&mut self) {
        self.put(b"null");
    }

    fn boolean(&mut self, x: bool) {
        self.put(if x { b"true" as &[u8] } else { b"false" });
    }

    fn uint(&mut self, mut x: u64) {
        // Fixed-buffer decimal formatting for the hot unsigned path (rows
        // are mostly `n`/`seed` fields): avoids `fmt::Arguments` per call.
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        loop {
            i -= 1;
            buf[i] = b'0' + (x % 10) as u8;
            x /= 10;
            if x == 0 {
                break;
            }
        }
        self.put(&buf[i..]);
    }

    fn int(&mut self, x: i64) {
        self.put_fmt(format_args!("{x}"));
    }

    fn float(&mut self, x: f64) {
        if x.is_finite() {
            self.put_fmt(format_args!("{x:?}"));
        } else {
            self.put(b"null");
        }
    }

    fn text(&mut self, s: &str) {
        self.put_escaped(s);
    }

    fn seq_begin(&mut self) {
        self.put(b"[");
        self.first.push(true);
    }

    fn seq_elem(&mut self) {
        self.separate();
    }

    fn seq_end(&mut self) {
        self.first.pop();
        self.put(b"]");
    }

    fn map_begin(&mut self) {
        self.put(b"{");
        self.first.push(true);
    }

    fn map_key(&mut self, key: &str) {
        self.separate();
        self.put_escaped(key);
        self.put(b":");
    }

    fn map_end(&mut self) {
        self.first.pop();
        self.put(b"}");
    }
}


/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error(format!("unexpected byte `{}` at {}", other as char, self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // renderer; reject them on input.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u codepoint".to_string()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan as UTF-8: back up and take one full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().ok_or_else(|| {
                        Error("unexpected end of string".to_string())
                    })?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compactly() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(7.0)),
        ]);
        let mut out = String::new();
        render(&v, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[true,null],"c":7.0}"#);
    }

    #[test]
    fn parses_what_it_renders() {
        let text = r#"{"x":[1,-2,3.5,"hi\n",{"y":null}],"z":true}"#;
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.parse_value().unwrap();
        let mut out = String::new();
        render(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn large_u64_is_exact() {
        let text = format!("{}", u64::MAX);
        let x: u64 = from_str(&text).unwrap();
        assert_eq!(x, u64::MAX);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<u32>("").is_err());
    }

    #[test]
    fn streaming_matches_value_tree_bytes() {
        // The streaming serializer and the historical tree path must agree
        // byte for byte, across every token kind and escape class.
        let samples: Vec<Value> = vec![
            Value::Null,
            Value::Bool(false),
            Value::UInt(u64::MAX),
            Value::Int(-42),
            Value::Float(3.25),
            Value::Float(7.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Str("plain".into()),
            Value::Str("esc \" \\ \n \r \t \u{1} unicode ßπ".into()),
            Value::Seq(vec![]),
            Value::Map(vec![]),
            Value::Map(vec![
                ("a".into(), Value::Seq(vec![Value::UInt(1), Value::Null])),
                ("nested".into(), Value::Map(vec![("x".into(), Value::Float(0.5))])),
            ]),
        ];
        for v in samples {
            let mut tree = String::new();
            render(&v, &mut tree);
            let mut streamed = Vec::new();
            let mut sink = JsonSink::new(&mut streamed);
            serde::stream_value(&v, &mut sink);
            sink.finish().unwrap();
            assert_eq!(String::from_utf8(streamed).unwrap(), tree, "mismatch for {v:?}");
        }
    }

    #[test]
    fn to_writer_streams_without_tree() {
        let mut out = Vec::new();
        to_writer(&mut out, &vec![(String::from("k\u{7}"), 2.5f64), ("p".into(), -1.0)]).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "[[\"k\\u0007\",2.5],[\"p\",-1.0]]");
    }

    #[test]
    fn to_string_equals_to_value_string() {
        let v = vec![Some(3u8), None, Some(255)];
        assert_eq!(to_string(&v).unwrap(), to_value_string(&v).unwrap());
        assert_eq!(to_string(&v).unwrap(), "[3,null,255]");
    }
}
