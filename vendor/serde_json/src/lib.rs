//! JSON text layer over the vendored serde shim.
//!
//! Provides [`to_string`] / [`from_str`] with conventional JSON output
//! (compact separators, escaped strings, integers kept exact, floats via
//! Rust's shortest-roundtrip formatting, non-finite floats as `null`).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Error from serialization or deserialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Kept for API compatibility; the shim's value tree always renders.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error(format!("unexpected byte `{}` at {}", other as char, self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // renderer; reject them on input.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u codepoint".to_string()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan as UTF-8: back up and take one full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().ok_or_else(|| {
                        Error("unexpected end of string".to_string())
                    })?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compactly() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(7.0)),
        ]);
        let mut out = String::new();
        render(&v, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[true,null],"c":7.0}"#);
    }

    #[test]
    fn parses_what_it_renders() {
        let text = r#"{"x":[1,-2,3.5,"hi\n",{"y":null}],"z":true}"#;
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.parse_value().unwrap();
        let mut out = String::new();
        render(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn large_u64_is_exact() {
        let text = format!("{}", u64::MAX);
        let x: u64 = from_str(&text).unwrap();
        assert_eq!(x, u64::MAX);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<u32>("").is_err());
    }
}
