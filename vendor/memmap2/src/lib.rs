//! Minimal offline stand-in for the `memmap2` crate: **read-only** file
//! mappings, just enough for the frozen graph snapshot loader.
//!
//! This build environment has no crates-io access, so the real crate (and
//! `libc`) are unavailable; on unix we call `mmap`/`munmap` directly through
//! `extern "C"`. Everywhere else — and whenever the `LCL_NO_MMAP`
//! environment variable is set or the mapping fails (e.g. zero-length
//! files) — the file is read into an owned buffer instead, so callers see
//! the same `&[u8]` either way and tests run without mmap support.
//!
//! The first-party crates `#![forbid(unsafe_code)]`; the unsafe FFI lives
//! here, outside the workspace, like the other vendored shims.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::os::raw::c_void,
        len: usize,
    },
    Buffered(Vec<u8>),
}

/// An immutable view of a file's bytes: a private read-only mapping when
/// the platform provides one, an owned buffer otherwise.
pub struct Mmap {
    inner: Inner,
}

// SAFETY: the mapping is private and read-only; the kernel never mutates
// it under us and we expose only `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only, falling back to a buffered read when mapping
    /// is unavailable (non-unix, `LCL_NO_MMAP` set, empty file, or a failed
    /// `mmap` call).
    pub fn map_path(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
        if std::env::var_os("LCL_NO_MMAP").is_none() && len > 0 {
            #[cfg(unix)]
            {
                use std::os::unix::io::AsRawFd;
                // SAFETY: fd is valid for the duration of the call; a
                // PROT_READ + MAP_PRIVATE mapping of `len` bytes at offset
                // 0 is within the file we just measured. The pointer is
                // owned by the returned Mmap and unmapped exactly once.
                let ptr = unsafe {
                    sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, file.as_raw_fd(), 0)
                };
                if ptr as isize != -1 && !ptr.is_null() {
                    return Ok(Mmap { inner: Inner::Mapped { ptr, len } });
                }
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mmap { inner: Inner::Buffered(buf) })
    }

    /// True if this view is backed by a real memory mapping (diagnostics).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Buffered(_) => false,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful read-only mmap that
            // lives as long as self.
            Inner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.cast::<u8>(), *len)
            },
            Inner::Buffered(buf) => buf,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: exactly the pointer/length pair returned by mmap.
                unsafe {
                    sys::munmap(*ptr, *len);
                }
            }
            Inner::Buffered(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("memmap2-shim-{}-{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn mapped_bytes_match_file_contents() {
        let p = tmp("basic", b"hello mapping");
        let m = Mmap::map_path(&p).unwrap();
        assert_eq!(&*m, b"hello mapping");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_falls_back_to_buffer() {
        let p = tmp("empty", b"");
        let m = Mmap::map_path(&p).unwrap();
        assert!(!m.is_mapped());
        assert!(m.is_empty());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::map_path(Path::new("/definitely/not/here")).is_err());
    }
}
