//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote` —
//! the offline build has no access to them) and emit impls of the shim's
//! value-tree traits. Supported shapes, which cover this workspace: named
//! structs, tuple and unit structs, enums with unit / newtype / tuple /
//! struct variants, and simple type generics (each parameter is bounded by
//! the derived trait, mirroring real serde's default bounds).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Type parameter names, in declaration order.
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// --- parsing -------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };

    Input { name, generics, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<A, B: Bound, 'x>` if present; returns the *type* parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *i += 1,
        _ => return params,
    }
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *i += 1;
                continue;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                // Lifetime parameter: consume the quote; its ident follows
                // and must not be captured as a type parameter.
                *i += 2;
                at_param_start = false;
                continue;
            }
            Some(TokenTree::Ident(id)) if at_param_start && depth == 1 => {
                params.push(id.to_string());
                at_param_start = false;
            }
            None => panic!("unclosed generics"),
            _ => {}
        }
        *i += 1;
    }
    params
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        // Skip `:` and the type, up to the next top-level comma.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                // A trailing comma does not start a new field.
                if idx + 1 < tokens.len() {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant and the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- generation ----------------------------------------------------------

fn impl_header(item: &Input, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", item.name)
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        let plain = item.generics.join(", ");
        format!("impl<{}> ::serde::{trait_name} for {}<{plain}> ", bounded.join(", "), item.name)
    }
}

fn gen_serialize(item: &Input) -> String {
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let ty = &item.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(String::from(\"{vn}\"))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{ty}::{vn}(__f0) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                                 (String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let stream_body = gen_stream_body(item);
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} \
         fn stream(&self, __s: &mut dyn ::serde::Sink) {{ {stream_body} }} }}",
        impl_header(item, "Serialize")
    )
}

/// Body of the streaming `Serialize::stream` method: the same shape as
/// `to_value`, but pushing tokens into the sink instead of allocating a
/// `Value` tree. The two must emit identical token sequences.
fn gen_stream_body(item: &Input) -> String {
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("__s.map_key(\"{f}\"); ::serde::Serialize::stream(&self.{f}, __s);")
                })
                .collect();
            format!("__s.map_begin(); {} __s.map_end();", entries.join(" "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::stream(&self.0, __s);".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("__s.seq_elem(); ::serde::Serialize::stream(&self.{k}, __s);"))
                .collect();
            format!("__s.seq_begin(); {} __s.seq_end();", items.join(" "))
        }
        Kind::UnitStruct => "__s.null();".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let ty = &item.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("{ty}::{vn} => {{ __s.text(\"{vn}\"); }}")
                        }
                        VariantFields::Tuple(1) => format!(
                            "{ty}::{vn}(__f0) => {{ __s.map_begin(); __s.map_key(\"{vn}\"); \
                             ::serde::Serialize::stream(__f0, __s); __s.map_end(); }}"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "__s.seq_elem(); ::serde::Serialize::stream(__f{k}, __s);"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn}({}) => {{ __s.map_begin(); __s.map_key(\"{vn}\"); \
                                 __s.seq_begin(); {} __s.seq_end(); __s.map_end(); }}",
                                binds.join(", "),
                                items.join(" ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__s.map_key(\"{f}\"); \
                                         ::serde::Serialize::stream({f}, __s);"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => {{ __s.map_begin(); \
                                 __s.map_key(\"{vn}\"); __s.map_begin(); {} __s.map_end(); \
                                 __s.map_end(); }}",
                                entries.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\")?)?")
                })
                .collect();
            format!("Ok({} {{ {} }})", item.name, inits.join(", "))
        }
        Kind::TupleStruct(1) => {
            format!("Ok({}(::serde::Deserialize::from_value(__v)?))", item.name)
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "{{ let __items = __v.seq_n({n})?; Ok({}({})) }}",
                item.name,
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!(
            "match __v {{ ::serde::Value::Null => Ok({}), __other => \
             Err(::serde::DeError::new(format!(\"expected null, got {{__other:?}}\"))) }}",
            item.name
        ),
        Kind::Enum(variants) => {
            let ty = &item.name;
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{0}\" => Ok({ty}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({ty}::{vn}(::serde::Deserialize::from_value(__val)?))"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __items = __val.seq_n({n})?; \
                                 Ok({ty}::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __val.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({ty}::{vn} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit} \
                   __other => Err(::serde::DeError::new(format!(\
                     \"unknown unit variant `{{__other}}` for {ty}\"))) }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                   let (__key, __val) = &__entries[0]; \
                   let _ = __val; \
                   match __key.as_str() {{ {data} \
                     __other => Err(::serde::DeError::new(format!(\
                       \"unknown variant `{{__other}}` for {ty}\"))) }} }}, \
                 __other => Err(::serde::DeError::new(format!(\
                   \"expected variant of {ty}, got {{__other:?}}\"))) }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(", "))
                },
            )
        }
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}
