//! Vendored micro-benchmark harness (see `vendor/rand` for why).
//!
//! Implements the `criterion` entry points the workspace's benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Each sample times one execution of the
//! routine; the harness prints min/mean/max wall-clock per benchmark.
//! There is no statistical analysis, HTML report, or baseline storage.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self, sample_size: 10 }
    }
}

/// A named benchmark id with a parameter, rendered as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), param) }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut times: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // One warm-up pass, untimed.
        let mut bencher = Bencher { elapsed: Duration::ZERO };
        f(&mut bencher, input);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { elapsed: Duration::ZERO };
            f(&mut bencher, input);
            times.push(bencher.elapsed);
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / self.sample_size as u32;
        println!(
            "  {:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
            id.label, min, mean, max, self.sample_size
        );
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Times routines inside one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (real criterion loops adaptively;
    /// the shim charges a single run per sample).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Opaque value sink, preventing the optimizer from deleting the benched
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
