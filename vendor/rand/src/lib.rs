//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no network access and no
//! crates-io mirror, so the external crates the code depends on are shipped
//! as minimal shims under `vendor/`. This crate implements exactly the
//! surface the workspace uses: [`RngCore`], [`SeedableRng`] (including the
//! SplitMix64-based `seed_from_u64` expansion), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom::shuffle`].
//!
//! It is **not** a drop-in replacement for the real crate: distributions,
//! thread-local RNGs, and OS entropy are deliberately absent, and the
//! streams it produces do not match upstream `rand` bit-for-bit. Everything
//! here is deterministic, which is exactly what the reproduction needs.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same scheme upstream `rand` uses, so seeds stay well mixed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod uniform {
    use super::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Integer types that [`super::Rng::gen_range`] can sample uniformly.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Samples uniformly from `[low, high]` (inclusive ends).
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    debug_assert!(low <= high);
                    let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1) as u128;
                    if span == 0 {
                        // Full-width range: any word is uniform.
                        return rng.next_u64() as $t;
                    }
                    // Rejection sampling on the top multiple of `span`
                    // keeps the draw exactly uniform.
                    let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                    loop {
                        let word = u128::from(rng.next_u64());
                        if word <= zone {
                            return low.wrapping_add((word % span) as $t);
                        }
                    }
                }
            }
        )*};
    }
    impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples a value uniformly from the range.
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_inclusive(rng, self.start, self.end.minus_one())
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "gen_range: empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    /// Helper to turn a half-open bound into an inclusive one.
    pub trait One {
        /// `self - 1`, used to close a half-open upper bound.
        fn minus_one(self) -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(
            impl One for $t {
                fn minus_one(self) -> Self { self - 1 }
            }
        )*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub use uniform::{SampleRange, SampleUniform};

/// Types producible by [`Rng::gen`] (the subset of the upstream `Standard`
/// distribution the workspace uses).
pub trait Fill: Sized {
    /// Draws one value.
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for u8 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Fill for u16 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Fill for u32 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Fill for u64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Fill for usize {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Fill for bool {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Fill for f64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl<A: Fill, B: Fill> Fill for (A, B) {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let a = A::fill_from(rng);
        let b = B::fill_from(rng);
        (a, b)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill_from(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::fill_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence utilities (`shuffle`).

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Lcg(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
