//! Vendored property-testing shim (see `vendor/rand` for why it exists).
//!
//! API-compatible with the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), integer-range
//! and tuple strategies, `prop_map` / `prop_flat_map`, `collection::vec` /
//! `collection::btree_set`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully deterministic, no persistence files) and failing
//! cases are **not shrunk** — the panic message prints the failing inputs
//! instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Error carried out of a failing test case body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator: SplitMix64 seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for a named test (FNV-1a over the name).
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)` (rejection sampling; `span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty range");
            let zone = u64::MAX - u64::MAX % span;
            loop {
                let word = self.next_u64();
                if word < zone {
                    return word % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Marker so `PhantomData` is not an unused import if tuples change.
    #[doc(hidden)]
    pub type _Phantom = PhantomData<()>;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A size specification: fixed or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for a `BTreeSet`; draws `size` samples and dedups, so the
    /// result may be smaller than requested (matches how the workspace's
    /// tests use it — they filter the values anyway).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!("{:?}", ($(&$arg,)*));
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(__e) = __result {
                        panic!(
                            "proptest {}: case {}/{} failed: {}\ninputs: {}\n(vendored shim: no shrinking)",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest rejects and regenerates; the shim counts the case as
/// passed, which keeps case counts deterministic.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn maps_apply(v in (0u8..4).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 8);
        }

        #[test]
        fn flat_maps_chain(v in (1usize..5).prop_flat_map(|n| collection::vec(0u64..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
